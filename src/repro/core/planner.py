"""Collective data-movement planning: broadcast/relay replication.

GrOUT's scale-out tax is the distribution phase (Algorithm 1, third
phase): with round-robin placement every worker needs the same read-only
inputs, and N serial controller sends pile up on the controller NIC —
the §V-E BlackScholes/MV pathology.  The :class:`TransferPlanner` fixes
the *shape* of that traffic: replication requests for the same array that
arrive inside one scheduling window are coalesced into a single **relay
chain** (controller → w0 → w1 → ...) built from the
:class:`~repro.net.topology.Topology` matrix, so every link carries the
payload once instead of the controller carrying it N times.  With the
fabric's ``chunk_bytes`` pipelining, chunk *c* crosses hop *i+1* while
chunk *c+1* crosses hop *i* — the last worker finishes one array time
plus a pipeline fill after the first, not N array times later.

The planner is failure-aware: every relay leg is an interruptible
process registered as the destination's in-flight replication (with its
chain recorded via ``Directory.record_replication``), so when a relay
node dies mid-chain the standard crash repair re-sources the surviving
remainder from a live holder, and a leg that exhausts its chunk retries
falls back toward the controller exactly like a point-to-point move.

Disabled (the default) the planner never touches a transfer and the
event schedule stays byte-identical to the plain fabric.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.net.fabric import TransferError
from repro.sim import Event, Interrupt, Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.arrays import ManagedArray
    from repro.core.ce import ComputationalElement
    from repro.core.controller import Controller

__all__ = ["RelayPlan", "TransferPlanner"]

#: Interrupt-cause tag of crash interruptions (mirrors controller's).
_NODE_CRASH = "node-crash"

#: How many times a leg re-sources after exhausted retries before
#: giving up (crash re-sourcing is unbounded, like the point-to-point
#: mover's).
_MAX_RESCUES = 3


class RelayPlan:
    """One coalesced multi-destination replication of a single array.

    Opens when the first destination asks for the array, keeps
    coalescing further destinations until the simulation processes its
    first event (the *scheduling window* — every request issued
    synchronously at the same timestamp joins), then fixes the relay
    chain and lets the legs flow.
    """

    __slots__ = ("array", "source", "producer", "sizes", "launched",
                 "open", "chain", "legs", "ready", "ces")

    def __init__(self, array: "ManagedArray", source: str,
                 producer: Event | None, sizes: list[int],
                 launched: Event):
        self.array = array
        self.source = source
        self.producer = producer
        #: pipeline granule sizes (one entry when chunking is off)
        self.sizes = sizes
        #: fires once the window closed and ``chain`` is fixed
        self.launched = launched
        self.open = True
        self.chain: list[str] = [source]
        #: destination -> its relay-leg process (the in-flight event)
        self.legs: dict[str, Process] = {}
        #: destination -> the CE whose placement requested the copy
        self.ces: dict[str, "ComputationalElement | None"] = {}
        #: node -> per-chunk availability events (chain members only)
        self.ready: dict[str, list[Event]] = {}

    def predecessor(self, node: str) -> str:
        """The chain hop ``node`` ships from (only after launch)."""
        return self.chain[self.chain.index(node) - 1]

    def ready_event(self, node: str, index: int) -> Event | None:
        """Availability event of chunk ``index`` on ``node``.

        ``None`` means the node is outside the chain — a full up-to-date
        holder a leg re-sourced to, whose every chunk already exists.
        """
        events = self.ready.get(node)
        return events[index] if events is not None else None

    def mark(self, node: str, index: int) -> None:
        """Chunk ``index`` landed on ``node``: wake the successor leg."""
        events = self.ready.get(node)
        if events is not None and not events[index].triggered:
            events[index].succeed()


class TransferPlanner:
    """Coalesces replication requests into pipelined relay chains."""

    def __init__(self, controller: "Controller", *,
                 enabled: bool = False,
                 chunk_bytes: int | None = None):
        self.controller = controller
        self.enabled = enabled
        #: pipeline granule of relay legs; ``None`` defers to the
        #: fabric's own ``chunk_bytes`` (store-and-forward when both off)
        self.chunk_bytes = chunk_bytes
        self._open: dict[int, RelayPlan] = {}
        m = controller.metrics
        self._m_broadcasts = m.family(
            "grout_collective_broadcasts_total").labels()
        self._m_destinations = m.family(
            "grout_collective_destinations_total").labels()
        self._m_resourced = m.family(
            "grout_collective_resourced_total").labels()

    # -- request intake ------------------------------------------------------

    def applies_to(self, array: "ManagedArray") -> bool:
        """Whether this array's next replication should be planned
        collectively (enabled, and the controller is the sole holder —
        the broadcast-of-shared-inputs shape)."""
        return (self.enabled
                and self.controller.directory.only_on_controller(array))

    def wants(self, array: "ManagedArray",
              producer: Event | None) -> bool:
        """Whether a replication of ``array`` should route through the
        planner: the broadcast shape opens a window, and every later
        same-window request joins it (the directory already lists the
        earlier destinations as holders, so ``applies_to`` alone would
        miss them)."""
        if self.applies_to(array):
            return True
        plan = self._open.get(array.buffer_id)
        return (plan is not None and plan.open
                and plan.producer is producer)

    def request(self, array: "ManagedArray", dst: str,
                producer: Event | None,
                for_ce: "ComputationalElement | None" = None) -> Process:
        """Add ``dst`` to the array's open relay window (opening one if
        needed); returns the leg process to wait on."""
        engine = self.controller.engine
        plan = self._open.get(array.buffer_id)
        if plan is None or not plan.open or plan.producer is not producer:
            fabric = self.controller.cluster.fabric
            sizes = fabric.chunk_sizes(array.nbytes, self.chunk_bytes)
            if not sizes:          # zero-byte array: nothing to pipeline
                sizes = [0]
            plan = RelayPlan(array, self.controller.cluster.controller.name,
                             producer, sizes,
                             engine.event(name=f"relay:{array.name}:go"))
            self._open[array.buffer_id] = plan
            engine.process(self._driver(plan),
                           name=f"relay:{array.name}:driver")
        plan.ces[dst] = for_ce
        leg = engine.process(self._leg(plan, dst),
                             name=f"relay:{array.name}->{dst}")
        plan.legs[dst] = leg
        return leg

    # -- the window driver ---------------------------------------------------

    def _driver(self, plan: RelayPlan) -> Generator:
        """Close the window at the first processed event, fix the chain,
        release the source's chunks once the producer finished."""
        engine = self.controller.engine
        yield engine.timeout(0)
        plan.open = False
        if self._open.get(plan.array.buffer_id) is plan:
            del self._open[plan.array.buffer_id]
        # Destinations whose leg already died (a crash inside the window
        # cancelled it) must not become hops: nobody would publish their
        # chunks and the successors would wait forever.
        live = [d for d in plan.legs
                if plan.legs[d].is_alive and d in self.controller.workers]
        plan.chain = self._order_chain(plan, live)
        for node in plan.chain:
            plan.ready[node] = [engine.event() for _ in plan.sizes]
        directory = self.controller.directory
        state = directory.state(plan.array)
        for i, dst in enumerate(plan.chain[1:]):
            # Re-record each destination with its real predecessor and
            # the full chain — unless a program-order write invalidated
            # the replication since the window opened.
            if state.inflight.get(dst) is plan.legs[dst]:
                directory.record_replication(
                    plan.array, dst, plan.legs[dst], src=plan.chain[i],
                    relay=tuple(plan.chain))
        self._m_broadcasts.inc()
        self._m_destinations.inc(len(plan.chain) - 1)
        plan.launched.succeed()
        if plan.producer is not None and not plan.producer.processed:
            yield plan.producer
        for ev in plan.ready[plan.source]:
            ev.succeed()

    def _order_chain(self, plan: RelayPlan,
                     destinations: list[str]) -> list[str]:
        """Greedy relay order: from the source, repeatedly append the
        destination with the fastest link from the current tail (the
        paper's interconnection matrix, §IV-D), names breaking ties."""
        topology = self.controller.cluster.topology
        nbytes = plan.array.nbytes
        remaining = sorted(destinations)
        chain = [plan.source]
        while remaining:
            tail = chain[-1]
            nxt = min(remaining,
                      key=lambda n: (topology.transfer_seconds(
                          tail, n, nbytes), n))
            chain.append(nxt)
            remaining.remove(nxt)
        return chain

    # -- one relay leg -------------------------------------------------------

    def _leg(self, plan: RelayPlan, dst: str) -> Generator:
        """Pull every chunk from the predecessor as it becomes available,
        republish each for the successor; survive crashes and exhausted
        retries by re-sourcing the remainder from a live holder."""
        controller = self.controller
        engine = controller.engine
        fabric = controller.cluster.fabric
        array = plan.array
        yield plan.launched
        src = plan.predecessor(dst)
        start: float | None = None
        done_chunks = 0
        rescues = 0
        while done_chunks < len(plan.sizes):
            try:
                while done_chunks < len(plan.sizes):
                    i = done_chunks
                    ready = plan.ready_event(src, i)
                    if ready is not None and not ready.processed:
                        yield ready
                    if start is None:
                        # Transfer attribution starts when data first
                        # could flow — producer/pipeline-fill excluded.
                        start = engine.now
                    yield from fabric.chunk_process(
                        src, dst, plan.sizes[i], array.name, i)
                    done_chunks += 1
                    plan.mark(dst, i)
            except Interrupt as intr:
                cause = intr.cause
                if not (isinstance(cause, tuple) and cause
                        and cause[0] == _NODE_CRASH):
                    raise
                src = self._resource(plan, dst, exclude=cause[1])
            except TransferError:
                rescues += 1
                if rescues > _MAX_RESCUES or src == plan.source:
                    raise
                src = self._resource(plan, dst, exclude=src)
        end = engine.now
        tracer = controller.cluster.tracer
        if tracer is not None and start is not None:
            tracer.record(f"relay:{array.name}", "relay", f"{src}->{dst}",
                          start, end,
                          nbytes=array.nbytes, chunks=len(plan.sizes))
        for_ce = plan.ces.get(dst)
        if (controller.profiler is not None and for_ce is not None
                and start is not None):
            controller.profiler.record_transfer(
                for_ce, end - start, nbytes=array.nbytes, node=dst)
        return array.nbytes

    def _resource(self, plan: RelayPlan, dst: str, exclude: str) -> str:
        """Pick a surviving source for a broken leg and re-point the
        directory's in-flight bookkeeping at it.

        Chain members at or past ``dst`` are never candidates: their
        chunks derive (transitively) from this very leg, so sourcing
        from one would deadlock the pipeline.  Upstream members are
        fine — their chunks arrive regardless of ``dst``'s fate.
        """
        controller = self.controller
        home = controller.cluster.controller.name
        state = controller.directory.state(plan.array)
        downstream = set(plan.chain[plan.chain.index(dst):]) \
            if dst in plan.chain else {dst}
        topology = controller.cluster.topology
        nbytes = plan.array.nbytes
        candidates = [h for h in state.up_to_date
                      if h != exclude and h not in downstream
                      and (h == home or h in controller.workers)]
        if candidates:
            src = min(candidates,
                      key=lambda h: (h == home, topology.transfer_seconds(
                          h, dst, nbytes), h))
        else:
            # Last resort mirrors the point-to-point mover: the home
            # copy survives rollback, so fall back to the controller.
            state.up_to_date.add(home)
            src = home
        if dst in state.inflight_src:
            state.inflight_src[dst] = src
        self._m_resourced.inc()
        return src
