"""GrOUT's core: CEs, dependency DAGs, hierarchical scheduling, coherence.

Public entry points are :class:`GroutRuntime` (distributed, the paper's
contribution) and :class:`GrCudaRuntime` (single-node baseline).
"""

from repro.core.autoscale import KpiAutoscaler, ScalingDecision
from repro.core.arrays import (
    CONTROLLER,
    ArrayState,
    Directory,
    DirectoryRepair,
    ManagedArray,
    partition_rows,
)
from repro.core.ce import CeKind, ComputationalElement, depends_on
from repro.core.config import RuntimeConfig, page_size_for
from repro.core.controller import (
    Controller,
    ControllerStats,
    RecoveryReport,
    RunningAggregate,
)
from repro.core.dag import DependencyDag
from repro.core.grcuda import GrCudaRuntime
from repro.core.intranode import IntraNodeScheduler
from repro.core.pipeline import (
    AdmissionStage,
    CoherenceStage,
    DataMovementStage,
    DispatchStage,
    FairShareGate,
    PlacementStage,
    SchedulingPipeline,
    SchedulingState,
    Stage,
)
from repro.core.planner import RelayPlan, TransferPlanner
from repro.core.policies import (
    ExplorationLevel,
    LeastLoadedPolicy,
    MinTransferSizePolicy,
    MinTransferTimePolicy,
    Policy,
    RoundRobinPolicy,
    SchedulingContext,
    VectorStepPolicy,
    available_policies,
    make_policy,
    register_policy,
)
from repro.core.runtime import GroutRuntime
from repro.core.session import Session, SessionClosedError

__all__ = [
    "AdmissionStage",
    "CONTROLLER",
    "ArrayState",
    "CeKind",
    "CoherenceStage",
    "ComputationalElement",
    "Controller",
    "ControllerStats",
    "DataMovementStage",
    "DependencyDag",
    "DispatchStage",
    "FairShareGate",
    "PlacementStage",
    "SchedulingPipeline",
    "SchedulingState",
    "Session",
    "Stage",
    "Directory",
    "DirectoryRepair",
    "ExplorationLevel",
    "GrCudaRuntime",
    "GroutRuntime",
    "IntraNodeScheduler",
    "KpiAutoscaler",
    "LeastLoadedPolicy",
    "ManagedArray",
    "ScalingDecision",
    "MinTransferSizePolicy",
    "MinTransferTimePolicy",
    "Policy",
    "RecoveryReport",
    "RelayPlan",
    "RoundRobinPolicy",
    "RunningAggregate",
    "RuntimeConfig",
    "SchedulingContext",
    "SessionClosedError",
    "TransferPlanner",
    "VectorStepPolicy",
    "available_policies",
    "depends_on",
    "make_policy",
    "page_size_for",
    "register_policy",
    "partition_rows",
]
