"""Hot-tenant plan cache — memoized Algorithm 1 decisions for repeated
programs.

A persistent runtime (``grout serve``) sees the same programs again and
again: every session a tenant submits under one workload spec runs the
same CE stream over freshly allocated arrays.  The full pipeline pays
for that repetition every time — frontier scans, policy evaluation,
transfer planning — even though it reaches the same decisions.  The
plan cache records those decisions once and replays them.

**Recording.**  A cold session (cache miss) runs the full pipeline
unchanged; a :class:`_PlanRecorder` rides along and, per CE, captures a
*normalized token* (kind, kernel, launch dims, accesses over
session-local buffer indices), the redundancy-filtered parent set (as
program-order positions), the placed node, and each parameter's
movement action (source node, or ``None`` when already up to date).
``Session.close`` commits the plan.  Recording aborts — silently, the
session just stays uncached — whenever a decision cannot be replayed
structurally: cross-session parents, cohort joins, or buffers that
arrive with history.

**Replay.**  A warm session (cache hit) gets a :class:`_PlanReplayer`;
the controller routes each CE through :meth:`_PlanReplayer.replay`
instead of the pipeline.  Every recorded decision is re-validated
against *live* state before anything mutates — token equality,
virgin-buffer binding, node liveness, per-array movement preconditions
— and on any mismatch the replayer deactivates and the CE (and the
rest of the program) falls back to the full pipeline, mid-program
included.  The DAG, Directory, fair-share gate, policy notifications,
coherence and dispatch stages all stay live during replay, so a
fallback resumes from a correct state and concurrent cold sessions see
the truth.

**Invalidation.**  Structural events — worker added, worker crash,
faults armed — bump the cache epoch and drop every plan; replayers
notice the stale epoch on their next CE and fall back.  The store is a
bounded LRU; everything is observable under the
``grout_plancache_*`` metrics.

The cache is a pure fast path: with the knob off nothing here is
constructed and the event schedule stays byte-identical to the golden
trace; with it on, replayed programs are decision-identical to what
the pipeline would have produced (placements, movement legs, coherence
transitions), which the plan-cache tests pin by trace diff.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.core.ce import CeKind
from repro.core.pipeline import FastMove
from repro.core.pipeline.base import SchedulingState
from repro.uvm.manager import KernelCostRecord, capture_kernel_cost

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.arrays import ManagedArray
    from repro.core.ce import ComputationalElement
    from repro.core.controller import Controller
    from repro.core.session import Session

__all__ = ["PlanCache", "SchedulePlan", "PlanStep"]

#: Bounded LRU size: plans beyond this many distinct keys evict the
#: least recently used (counted under reason="evicted").
DEFAULT_CAPACITY = 128

#: Sentinel the movement stage records when a fresh replication's source
#: cannot be read back; never a valid node name, so it poisons the step
#: and aborts the recording.
UNKNOWN_SOURCE = ""


@dataclass(frozen=True, slots=True)
class PlanStep:
    """One CE's recorded scheduling decision."""

    #: Normalized identity of the CE (see :func:`_normalize`); replay
    #: requires exact equality against the incoming CE's token.
    token: tuple
    #: Direct ancestors, as 0-based positions in the session's program
    #: order (``session_seq - 1``).
    parents: tuple[int, ...]
    #: Node the placement stage chose.
    node: str
    #: Per ``ce.arrays`` entry: the replication's source node, or
    #: ``None`` when the array was already up to date on ``node``.
    moves: tuple[str | None, ...]


@dataclass(slots=True)
class SchedulePlan:
    """A whole program's recorded decisions, one step per CE."""

    steps: tuple[PlanStep, ...]
    #: Cache epoch the plan was recorded under; a bump strands it.
    epoch: int
    #: Rough retained-size estimate (the ``grout_plancache_bytes`` gauge).
    nbytes: int
    #: Recorded kernel-launch costs, by step position: the UVM-layer
    #: transition each launch applied (page residency, clock, pricing).
    #: Sparse — launches whose effect was not replayable from counts
    #: (partial coverage, evictions, thrashing …) simply price live at
    #: replay; see :func:`repro.uvm.manager.capture_kernel_cost`.
    launch_costs: dict[int, KernelCostRecord] = field(
        default_factory=dict)


def _normalize(ce: "ComputationalElement", index_of: dict,
               requested: str | None,
               new_buffer_ok: "Callable[[ManagedArray], bool] | None" = None
               ) -> tuple | None:
    """The CE's schedule-relevant identity over session-local buffer ids.

    ``index_of`` maps ``buffer_id`` to a dense per-session index (grown
    in first-appearance order), so two runs of the same program over
    different array instances normalize identically.  ``requested``
    pins pre-placement user assignment (directed prefetch).
    ``new_buffer_ok`` vets each first-seen buffer (the virgin check);
    returning ``False`` makes the whole token ``None``.
    """
    acc = []
    for access in ce.accesses:
        arr = access.buffer
        bid = arr.buffer_id
        idx = index_of.get(bid)
        if idx is None:
            if new_buffer_ok is not None and not new_buffer_ok(arr):
                return None
            idx = len(index_of)
            index_of[bid] = idx
        acc.append((idx, access.direction.name, access.pattern.name,
                    access.passes, arr.nbytes))
    kernel = ce.kernel
    config = ce.config
    return (
        ce.kind.value,
        requested,
        kernel.name if kernel is not None else None,
        (config.grid, config.block) if config is not None else None,
        tuple(acc),
    )


def _estimate_nbytes(steps: tuple[PlanStep, ...]) -> int:
    """Coarse retained-size estimate of one plan (gauge feed, not an
    allocator; constants approximate CPython tuple/str overheads)."""
    total = 0
    for step in steps:
        total += 120 + 16 * len(step.parents) + 56 * len(step.moves)
        total += 72 * len(step.token[-1])
    return total


class PlanCache:
    """Per-runtime store of recorded schedule plans, LRU-bounded.

    Owned by the controller when the ``plan_cache`` knob is on; sessions
    opened with a ``plan_key`` attach here (:meth:`attach`) and either
    replay a stored plan or record a new one.  Structural invalidation
    goes through :meth:`invalidate_all`.
    """

    def __init__(self, controller: "Controller",
                 capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.controller = controller
        self.capacity = capacity
        #: Topology/fault generation; bumped on every structural change.
        #: Plans and replayers from older epochs are dead on arrival.
        self.epoch = 0
        self._plans: "OrderedDict[str, SchedulePlan]" = OrderedDict()
        self._nbytes = 0
        registry = controller.metrics
        self._hits = registry.family(
            "grout_plancache_hits_total").labels()
        self._misses = registry.family(
            "grout_plancache_misses_total").labels()
        self._invalidations = registry.family(
            "grout_plancache_invalidations_total")
        self._bytes = registry.family("grout_plancache_bytes").labels()
        self._cost_replays = registry.family(
            "grout_plancache_cost_replays_total").labels()

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, key: str) -> bool:
        return key in self._plans

    @property
    def nbytes(self) -> int:
        """Estimated bytes retained by stored plans."""
        return self._nbytes

    def recordable(self) -> bool:
        """Whether current fabric state allows recording *and* replay.

        Mirrors the mover's FastMove precondition: armed fault
        machinery (resilient fabric, chunked or retried transfers)
        needs the interruptible generator path, which the replayer does
        not reproduce.
        """
        fabric = self.controller.cluster.fabric
        return (not fabric.resilient and fabric.chunk_bytes is None
                and fabric.retry.attempt_timeout is None)

    # -- session attachment ------------------------------------------------------

    def attach(self, session: "Session") -> None:
        """Route one keyed session: replay on a hit, record on a miss."""
        key = session.plan_key
        plan = self._plans.get(key)
        if plan is not None and plan.epoch == self.epoch:
            self._plans.move_to_end(key)
            self._hits.inc()
            session._plan_replayer = _PlanReplayer(self, session, plan)
            return
        if plan is not None:  # pragma: no cover - epoch bumps clear
            self.discard(key)
        self._misses.inc()
        if self.recordable():
            session._plan_recorder = _PlanRecorder(self, session)

    # -- store maintenance -------------------------------------------------------

    def count_invalidation(self, reason: str) -> None:
        """Count one invalidation/fallback under its reason label."""
        self._invalidations.labels(reason=reason).inc()

    def note_cost_replay(self) -> None:
        """Count one kernel launch served from a recorded cost."""
        self._cost_replays.inc()

    def invalidate_all(self, reason: str) -> None:
        """Structural change: bump the epoch and drop every plan."""
        self.epoch += 1
        self._plans.clear()
        self._nbytes = 0
        self._bytes.set(0)
        self.count_invalidation(reason)

    def discard(self, key: str, reason: str | None = None) -> None:
        """Drop one plan (no-op when absent); optionally counted."""
        plan = self._plans.pop(key, None)
        if plan is not None:
            self._nbytes -= plan.nbytes
            self._bytes.set(self._nbytes)
            if reason is not None:
                self.count_invalidation(reason)

    def store(self, key: str, plan: SchedulePlan) -> None:
        """Insert (or refresh) one plan, evicting LRU past capacity."""
        self.discard(key)
        self._plans[key] = plan
        self._nbytes += plan.nbytes
        while len(self._plans) > self.capacity:
            _, evicted = self._plans.popitem(last=False)
            self._nbytes -= evicted.nbytes
            self.count_invalidation("evicted")
        self._bytes.set(self._nbytes)


class _PlanRecorder:
    """Rides along a cold session's full-pipeline run and builds its plan.

    The controller calls :meth:`begin` before and :meth:`record` after
    each CE's pipeline run; the movement stage feeds per-array actions
    through :meth:`note_move` in between.  Any unreplayable structure
    aborts the recording (the session simply stays uncached).
    ``Session._finalize`` commits.
    """

    def __init__(self, cache: PlanCache, session: "Session"):
        self.cache = cache
        self.session = session
        self.key = session.plan_key
        self._epoch = cache.epoch
        self._index_of: dict[int, int] = {}
        self._steps: list[PlanStep] = []
        self._moves: list[str | None] = []
        self._token: tuple | None = None
        self._launch_costs: dict[int, KernelCostRecord] = {}

    def begin(self, ce: "ComputationalElement") -> None:
        """Normalize the CE before the pipeline mutates it."""
        controller = self.cache.controller
        directory = controller.directory
        dag = controller.dag

        def fresh_ok(arr: "ManagedArray") -> bool:
            # First appearance must be a fresh allocation: replay binds
            # buffers by program position and assumes no prior history.
            return (directory.is_virgin(arr)
                    and dag.buffer_untouched(arr.buffer_id))

        token = _normalize(ce, self._index_of, ce.assigned_node, fresh_ok)
        if token is None:
            self._abort()
            return
        self._token = token
        if ce.kind is CeKind.KERNEL:
            # Ride along the launch's UVM pricing (which happens later,
            # at simulated execution time) and capture its effect for
            # the cost-replay fast path.  The closure checks it still
            # speaks for the session — an aborted recording (or a
            # finalized session) degrades to plain live pricing.
            position = len(self._steps)

            def probe(uvm, gpu, launch, recorder=self, pos=position):
                record, cost = capture_kernel_cost(
                    uvm, gpu, launch, recorder._index_of)
                if (record is not None and
                        recorder.session._plan_recorder is recorder):
                    recorder._launch_costs[pos] = record
                return cost

            ce.cost_probe = probe

    def note_move(self, src: str | None) -> None:
        """Movement-stage hook: one array's action, declaration order."""
        self._moves.append(src)

    def record(self, ce: "ComputationalElement",
               state: SchedulingState) -> None:
        """Capture one CE's decisions after its pipeline run."""
        moves, self._moves = self._moves, []
        token, self._token = self._token, None
        session = self.session
        parents = []
        for parent in state.ancestors:
            seq = parent.session_seq
            if (parent.ce_id < 0 or seq is None
                    or parent.session != session.name):
                # Cohort joins and cross-session ancestors have no
                # stable program-order identity to replay against.
                self._abort()
                return
            parents.append(seq - 1)
        if (token is None or state.node is None
                or len(moves) != len(ce.arrays)
                or UNKNOWN_SOURCE in moves):
            self._abort()
            return
        self._steps.append(PlanStep(token, tuple(parents),
                                    state.node, tuple(moves)))

    def _abort(self) -> None:
        self.session._plan_recorder = None
        self._steps.clear()
        self._launch_costs.clear()

    def commit(self) -> None:
        """Store the finished plan (session close hook)."""
        cache = self.cache
        if (not self._steps or self._epoch != cache.epoch
                or not cache.recordable()):
            return
        steps = tuple(self._steps)
        costs = dict(self._launch_costs)
        nbytes = _estimate_nbytes(steps) + 480 * len(costs)
        cache.store(self.key,
                    SchedulePlan(steps, cache.epoch, nbytes,
                                 launch_costs=costs))


class _PlanReplayer:
    """Replays a recorded plan CE-by-CE, guard-first.

    Per CE, every recorded decision is validated against live state
    before anything is mutated; the first mismatch deactivates the
    replayer (``replay`` returns ``None``) and the controller falls
    back to the full pipeline for the rest of the program.  The apply
    phase reproduces exactly what admission, placement and data
    movement would have done, then runs the *live* coherence and
    dispatch stages, so directory transitions, replica drops, worker
    submission and all bookkeeping stay authoritative.
    """

    def __init__(self, cache: PlanCache, session: "Session",
                 plan: SchedulePlan):
        self.cache = cache
        self.session = session
        self.plan = plan
        self.key = session.plan_key
        self.epoch = plan.epoch
        self.pos = 0
        self._index_of: dict[int, int] = {}
        #: Dense reverse of ``_index_of``: session-local index -> live
        #: buffer id, grown in first-appearance order alongside it.
        #: Cost records resolve their buffers through this list.
        self._buffer_ids: list[int] = []
        controller = cache.controller
        self._controller = controller
        self._gate = controller.fair_share_gate
        self._mover = controller.pipeline.stage("data-movement")
        self._coherence = controller.pipeline.stage("coherence")
        self._dispatch = controller.pipeline.stage("dispatch")

    def _fallback(self, reason: str, *, divergence: bool = False):
        """Deactivate; divergences also evict the (wrong-for-this-
        program) plan so the next session re-records."""
        self.session._plan_replayer = None
        if divergence:
            self.cache.discard(self.key)
        self.cache.count_invalidation(reason)
        return None

    def finish(self) -> None:
        """Session-close hook (still-attached replayers only): an
        under-consumed plan means the key maps to programs of
        different lengths — evict it."""
        if self.pos != len(self.plan.steps):
            self.cache.discard(self.key)
            self.cache.count_invalidation("divergence")

    def replay(self, ce: "ComputationalElement"
               ) -> SchedulingState | None:
        """Schedule one CE from the plan; ``None`` means fall back."""
        cache = self.cache
        controller = self._controller
        if cache.epoch != self.epoch:
            return self._fallback("stale-epoch")
        if not cache.recordable():
            return self._fallback("faults-armed")
        steps = self.plan.steps
        pos = self.pos
        if pos >= len(steps):
            return self._fallback("divergence", divergence=True)
        step = steps[pos]
        directory = controller.directory
        dag = controller.dag

        shared = False

        def fresh_ok(arr: "ManagedArray") -> bool:
            nonlocal shared
            if (directory.is_virgin(arr)
                    and dag.buffer_untouched(arr.buffer_id)):
                return True
            shared = True
            return False

        token = _normalize(ce, self._index_of, ce.assigned_node,
                           fresh_ok)
        if token is None:
            # The plan itself may be fine for private reruns; only this
            # session's arrays carry history.
            return self._fallback("shared-buffer")
        if token != step.token:
            return self._fallback("divergence", divergence=True)
        ids = self._buffer_ids
        for access in ce.accesses:
            bid = access.buffer.buffer_id
            if self._index_of[bid] == len(ids):
                ids.append(bid)
        node = step.node
        home = controller.cluster.controller.name
        if node != home and node not in controller.workers:
            return self._fallback("stale-node")
        ces = self.session._ces
        parents = []
        for idx in step.parents:
            if idx >= len(ces):  # pragma: no cover - token order pins this
                return self._fallback("divergence", divergence=True)
            parents.append(ces[idx])
        arrays = ce.arrays
        moves = step.moves
        if len(moves) != len(arrays):
            return self._fallback("divergence", divergence=True)
        for array, src in zip(arrays, moves):
            holders = directory.state(array).up_to_date
            if src is None:
                if node not in holders:
                    return self._fallback("divergence", divergence=True)
            elif (node in holders or src not in holders
                    or (src != home and src not in controller.workers)):
                return self._fallback("divergence", divergence=True)

        # -- every guard passed; apply the recorded decisions ----------------
        # Admission (recorded parents replace the frontier scan).
        session = self.session
        state = SchedulingState(ce=ce, session=session)
        state.started = time.perf_counter()
        session.tag(ce)
        state.ancestors = dag.add_with_parents(ce, parents)
        waits = state.waits
        for ancestor in state.ancestors:
            done = ancestor.done
            if done is not None and not done.processed:
                waits.append(done)
        self._gate.admit(ce, state)
        # Placement (recorded node; decision cost measured like Fig. 9).
        state.decision_seconds = time.perf_counter() - state.started
        controller.stats.observe_decision(state.decision_seconds)
        if controller.profiler is not None:
            controller.profiler.record_sched(
                ce, state.decision_seconds, node=node)
        ce.assigned_node = node
        state.node = node
        # Data movement (recorded sources; same events ensure_on_node
        # would have issued — the guards above pinned its branch).
        stats = controller.stats
        mover = self._mover
        for array, src in zip(arrays, moves):
            if src is None:
                ev = directory.replication_event(array, node)
            else:
                last = directory.state(array).last_writer
                producer = last.done if last is not None else None
                if src != home:
                    stats.count_p2p()
                ev = FastMove(mover, array, src, node, producer, ce)
                directory.record_replication(
                    array, node, ev, src=src,
                    producer_id=last.ce_id if producer is not None
                    else None)
                stats.count_transfer(array.nbytes)
            if ev is not None:
                waits.append(ev)
        # Kernel-cost replay: when the recording captured this launch's
        # UVM transition, skip the page-set/fault/degradation math at
        # execution time and apply the recorded effect.  Guard failure
        # inside replay_kernel degrades to live pricing, per launch.
        record = self.plan.launch_costs.get(pos)
        if record is not None:
            cache_ref = cache

            def probe(uvm, gpu, launch, record=record,
                      cache=cache_ref, ids=self._buffer_ids):
                cost = uvm.replay_kernel(gpu, launch, record, ids)
                if cost is not None:
                    cache.note_cost_replay()
                    return cost
                return uvm.price_kernel(gpu, launch)

            ce.cost_probe = probe
        # Coherence + dispatch stay fully live.
        state = self._coherence.process(ce, state)
        state = self._dispatch.process(ce, state)
        self.pos = pos + 1
        return state
