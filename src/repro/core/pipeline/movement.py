"""Data movement — the replications that feed a placed CE.

The third phase of Algorithm 1: for every parameter of the CE, issue
whatever inter-node transfer makes it up-to-date on the chosen node —
controller→worker when the data only lives on the controller, worker↔
worker P2P otherwise — or coalesce broadcast-shaped replication into the
:class:`~repro.core.planner.TransferPlanner`'s relay chains when
collectives are enabled.  The stage owns the failure-aware mover: crash
interrupts re-source a move from a surviving holder, exhausted fabric
retries fall back toward the controller.

Crash recovery re-enters this stage directly (``ensure_on_node`` with
``reexec_of``), so re-executions flow through the exact same staged path
as first executions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.fabric import TransferError, _FastTransfer
from repro.sim import Event, Interrupt
from repro.sim.events import EventState

from repro.core.pipeline.base import SchedulingState, Stage

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.arrays import ManagedArray
    from repro.core.ce import ComputationalElement

__all__ = ["DataMovementStage", "FastMove"]

#: Interrupt-cause tag carried by crash-triggered interruptions.
NODE_CRASH = "node-crash"

_PROCESSED = EventState.PROCESSED


class FastMove(Event):
    """A replication as a callback chain instead of a ``_move`` process.

    The common-case move — wait for the producer, charge source
    writeback, cross the fabric — is straight-line, so when no fault
    machinery is armed it runs generator-free with exact queue-hop
    parity: one zero-delay start call (the process start event), the
    shared producer delivery, one writeback call (the timeout), the
    transfer chain's three hops, and the move event itself.

    Crash repair still works on in-flight chains: :meth:`cancel` kills
    a move into a dead node (the event never fires), and
    :meth:`interrupt_crash` re-sources a move fed *by* a dead node from
    a surviving holder — the callback twins of the mover's Interrupt
    handling, used by the controller instead of Process.interrupt.
    """

    __slots__ = ("stage", "array", "src", "dst", "producer", "for_ce",
                 "_dead", "_leg", "_producer_index", "_measured_from")

    def __init__(self, stage: "DataMovementStage", array: "ManagedArray",
                 src: str, dst: str, producer: Event | None,
                 for_ce: "ComputationalElement | None"):
        engine = stage.controller.engine
        super().__init__(engine, name=f"move:{array.name}->{dst}")
        self.stage = stage
        self.array = array
        self.src = src
        self.dst = dst
        self.producer = producer
        self.for_ce = for_ce
        self._dead = False
        self._leg: _FastTransfer | None = None
        self._producer_index = -1
        self._measured_from: float | None = None
        # One hop before anything runs, like a Process's start event.
        engine.schedule_call(0.0, self._begin)

    @property
    def is_alive(self) -> bool:
        """True while the move has not completed (mirrors Process)."""
        return not self.triggered

    # -- chain stages --------------------------------------------------------

    def _begin(self, _arg: object = None) -> None:
        if self._dead:
            return
        producer = self.producer
        if producer is not None and producer._state is not _PROCESSED:
            producer._defused = True
            self._producer_index = len(producer.callbacks)
            producer.callbacks.append(self._after_producer)
            return
        self._after_producer(None)

    def _after_producer(self, ev: Event | None) -> None:
        if self._dead:
            return
        if ev is not None and not ev._ok:
            # The producer failed: the move fails with its exception,
            # exactly like the generator path's uncaught throw.
            self.fail(ev._value)  # type: ignore[arg-type]
            return
        controller = self.stage.controller
        if self._measured_from is None:
            self._measured_from = controller.engine.now
        source_worker = controller.workers.get(self.src)
        if source_worker is not None:
            wb = source_worker.writeback_seconds(self.array)
            if wb > 0:
                controller.engine.schedule_call(wb, self._transfer)
                return
        self._transfer(None)

    def _transfer(self, _arg: object) -> None:
        if self._dead:
            return
        array = self.array
        if self.src == self.dst or array.nbytes == 0:
            self._complete(None)
            return
        fabric = self.stage.controller.cluster.fabric
        leg = _FastTransfer(fabric, self.src, self.dst, array.nbytes,
                            label=array.name)
        leg._defused = True
        self._leg = leg
        leg.callbacks.append(self._complete)

    def _complete(self, ev: Event | None) -> None:
        if self._dead:
            return
        self._leg = None
        if ev is not None and not ev._ok:
            # A flake armed mid-flight without the resilient latch —
            # unreachable through the fault injector; fail the move
            # rather than guess at a retry schedule.
            self.fail(ev._value)  # type: ignore[arg-type]
            return
        controller = self.stage.controller
        if controller.profiler is not None and self.for_ce is not None:
            controller.profiler.record_transfer(
                self.for_ce, controller.engine.now - self._measured_from,
                nbytes=self.array.nbytes, node=self.dst)
        self.succeed(self.array.nbytes)

    # -- crash repair --------------------------------------------------------

    def _detach(self) -> None:
        producer = self.producer
        index = self._producer_index
        if (producer is not None and 0 <= index < len(producer.callbacks)
                and producer.callbacks[index] is self._after_producer):
            producer.callbacks[index] = None
        self._producer_index = -1
        leg, self._leg = self._leg, None
        if leg is not None:
            leg.abort()

    def cancel(self, cause: object = None) -> bool:
        """Kill the move (destination died); the event never fires."""
        self._defused = True
        if self._dead or self.triggered:
            return False
        self._dead = True
        self._detach()
        return True

    def interrupt_crash(self, dead_node: str) -> None:
        """Re-source from a surviving holder (the source died).

        The generator path's carrier event delivers the Interrupt one
        hop after the crash; the zero-delay call mirrors that.
        """
        if self._dead or self.triggered:
            return
        self._detach()
        self.engine.schedule_call(0.0, self._resourced, dead_node)

    def _resourced(self, dead_node: str) -> None:
        if self._dead or self.triggered:
            return
        stage = self.stage
        self.src = stage.surviving_source(self.array, self.dst,
                                          exclude=dead_node)
        stage.controller.stats.count_rerouted()
        self._begin(None)


class DataMovementStage(Stage):
    """Issue the transfers that make every parameter up-to-date."""

    name = "data-movement"

    def process(self, ce, state: SchedulingState) -> SchedulingState:
        """Run this phase for one CE (see the class docstring)."""
        assert state.node is not None, "placement must run before movement"
        session = state.session
        recorder = None if session is None else session._plan_recorder
        if recorder is not None:
            return self._process_recorded(ce, state, recorder)
        for array in ce.arrays:
            ev = self.ensure_on_node(array, state.node, for_ce=ce)
            if ev is not None:
                state.waits.append(ev)
        return state

    def _process_recorded(self, ce, state: SchedulingState,
                          recorder) -> SchedulingState:
        """Recording twin of :meth:`process`: identical decisions, plus
        a note of each array's movement action for the session's plan —
        the replication's source node, or ``None`` when the array was
        already up to date on the chosen node."""
        directory = self.controller.directory
        node = state.node
        for array in ce.arrays:
            fresh = not directory.up_to_date_on(array, node)
            ev = self.ensure_on_node(array, node, for_ce=ce)
            if ev is not None:
                state.waits.append(ev)
            if fresh:
                # "" (never a node name) marks an unreadable source —
                # e.g. a planner relay — and poisons the recording.
                recorder.note_move(
                    directory.state(array).inflight_src.get(node, ""))
            else:
                recorder.note_move(None)
        return state

    # -- Algorithm 1, data-movement phase --------------------------------------

    def ensure_on_node(self, array: "ManagedArray", node_name: str,
                       reexec_of: "ComputationalElement | None" = None,
                       for_ce: "ComputationalElement | None" = None
                       ) -> "Event | None":
        """Return the event a consumer on ``node_name`` must wait for.

        ``reexec_of`` marks a crash re-execution: the directory's
        ``last_writer`` may then be the re-executed CE itself (or a
        program-order-later casualty), and waiting on it would deadlock —
        the DAG parent waits already order the re-execution correctly.
        ``for_ce`` attributes the resulting transfer time to the
        consuming CE in the profiler.
        """
        controller = self.controller
        directory = controller.directory
        if directory.up_to_date_on(array, node_name):
            # Possibly still in flight from an earlier replication.
            return directory.replication_event(array, node_name)

        state = directory.state(array)
        last = state.last_writer
        producer = None
        if last is not None and (reexec_of is None
                                 or last.ce_id < reexec_of.ce_id):
            producer = last.done

        if reexec_of is None and controller.planner.wants(array, producer):
            # Broadcast shape: coalesce same-window replications into one
            # pipelined relay chain (the driver re-records each
            # destination's real predecessor once the chain is fixed).
            src = controller.cluster.controller.name
            done = controller.planner.request(array, node_name, producer,
                                              for_ce=for_ce)
        else:
            if directory.only_on_controller(array):
                src = controller.cluster.controller.name
            else:
                # The P2P source: the up-to-date holder with the best
                # link to the destination (prefer workers over the
                # controller; names break cost ties so the choice never
                # depends on set-iteration order).
                src = min(
                    (h for h in state.up_to_date if h != node_name),
                    key=lambda h: (
                        h == controller.cluster.controller.name,
                        controller.cluster.topology.transfer_seconds(
                            h, node_name, array.nbytes), h))
                if src != controller.cluster.controller.name:
                    controller.stats.count_p2p()
            fabric = controller.cluster.fabric
            if (not fabric.resilient and fabric.chunk_bytes is None
                    and fabric.retry.attempt_timeout is None):
                # No fault machinery armed: the move runs generator-free
                # (hop parity with _move; crash repair still cancels or
                # re-sources the chain through its explicit hooks).
                done = FastMove(self, array, src, node_name, producer,
                                for_ce)
            else:
                done = controller.engine.process(
                    self._move(array, src, node_name, producer,
                               for_ce=for_ce),
                    name=f"move:{array.name}->{node_name}")
        directory.record_replication(
            array, node_name, done, src=src,
            producer_id=last.ce_id if producer is not None else None)
        controller.stats.count_transfer(array.nbytes)
        return done

    def _move(self, array: "ManagedArray", src: str, dst: str,
              producer: "Event | None",
              for_ce: "ComputationalElement | None" = None):
        """Process: wait for the producer, flush source GPUs, cross the wire.

        Failure-aware: an interrupt carrying a node-crash cause makes the
        move re-source from a surviving holder and start over, and a
        transfer that exhausted its fabric retries falls back to another
        source (ultimately the controller) before giving up.
        """
        controller = self.controller
        rescues = 0
        measured_from: float | None = None
        while True:
            try:
                if producer is not None and not producer.processed:
                    yield producer
                if measured_from is None:
                    # Profile from after the producer wait: the wait is
                    # dependency stall, not data movement.
                    measured_from = controller.engine.now
                source_worker = controller.workers.get(src)
                if source_worker is not None:
                    wb = source_worker.writeback_seconds(array)
                    if wb > 0:
                        yield controller.engine.timeout(wb)
                yield from controller.cluster.fabric.transfer_process(
                    src, dst, array.nbytes, label=array.name)
                if controller.profiler is not None and for_ce is not None:
                    controller.profiler.record_transfer(
                        for_ce, controller.engine.now - measured_from,
                        nbytes=array.nbytes, node=dst)
                return array.nbytes
            except Interrupt as intr:
                cause = intr.cause
                if not (isinstance(cause, tuple) and cause
                        and cause[0] == NODE_CRASH):
                    raise
                src = self.surviving_source(array, dst, exclude=cause[1])
                controller.stats.count_rerouted()
            except TransferError:
                rescues += 1
                if rescues > 3 or src == controller.cluster.controller.name:
                    raise
                src = self.surviving_source(array, dst, exclude=src)
                controller.stats.count_rerouted()

    def surviving_source(self, array: "ManagedArray", dst: str,
                         exclude: str | None = None) -> str:
        """Best live holder to re-ship from; the controller is the
        guaranteed last resort (it regains validity if nobody else holds
        the array)."""
        controller = self.controller
        home = controller.cluster.controller.name
        state = controller.directory.state(array)
        candidates = [
            h for h in state.up_to_date
            if h not in (dst, exclude)
            and (h == home or h in controller.workers)
        ]
        if not candidates:
            state.up_to_date.add(home)
            return home
        return min(candidates, key=lambda h: (
            h == home,
            controller.cluster.topology.transfer_seconds(
                h, dst, array.nbytes),
            h))
