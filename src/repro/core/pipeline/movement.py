"""Data movement — the replications that feed a placed CE.

The third phase of Algorithm 1: for every parameter of the CE, issue
whatever inter-node transfer makes it up-to-date on the chosen node —
controller→worker when the data only lives on the controller, worker↔
worker P2P otherwise — or coalesce broadcast-shaped replication into the
:class:`~repro.core.planner.TransferPlanner`'s relay chains when
collectives are enabled.  The stage owns the failure-aware mover: crash
interrupts re-source a move from a surviving holder, exhausted fabric
retries fall back toward the controller.

Crash recovery re-enters this stage directly (``ensure_on_node`` with
``reexec_of``), so re-executions flow through the exact same staged path
as first executions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.fabric import TransferError
from repro.sim import Interrupt

from repro.core.pipeline.base import SchedulingState, Stage

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim import Event
    from repro.core.arrays import ManagedArray
    from repro.core.ce import ComputationalElement

__all__ = ["DataMovementStage"]

#: Interrupt-cause tag carried by crash-triggered interruptions.
NODE_CRASH = "node-crash"


class DataMovementStage(Stage):
    """Issue the transfers that make every parameter up-to-date."""

    name = "data-movement"

    def process(self, ce, state: SchedulingState) -> SchedulingState:
        """Run this phase for one CE (see the class docstring)."""
        assert state.node is not None, "placement must run before movement"
        for array in ce.arrays:
            ev = self.ensure_on_node(array, state.node, for_ce=ce)
            if ev is not None:
                state.waits.append(ev)
        return state

    # -- Algorithm 1, data-movement phase --------------------------------------

    def ensure_on_node(self, array: "ManagedArray", node_name: str,
                       reexec_of: "ComputationalElement | None" = None,
                       for_ce: "ComputationalElement | None" = None
                       ) -> "Event | None":
        """Return the event a consumer on ``node_name`` must wait for.

        ``reexec_of`` marks a crash re-execution: the directory's
        ``last_writer`` may then be the re-executed CE itself (or a
        program-order-later casualty), and waiting on it would deadlock —
        the DAG parent waits already order the re-execution correctly.
        ``for_ce`` attributes the resulting transfer time to the
        consuming CE in the profiler.
        """
        controller = self.controller
        directory = controller.directory
        if directory.up_to_date_on(array, node_name):
            # Possibly still in flight from an earlier replication.
            return directory.replication_event(array, node_name)

        state = directory.state(array)
        last = state.last_writer
        producer = None
        if last is not None and (reexec_of is None
                                 or last.ce_id < reexec_of.ce_id):
            producer = last.done

        if reexec_of is None and controller.planner.wants(array, producer):
            # Broadcast shape: coalesce same-window replications into one
            # pipelined relay chain (the driver re-records each
            # destination's real predecessor once the chain is fixed).
            src = controller.cluster.controller.name
            done = controller.planner.request(array, node_name, producer,
                                              for_ce=for_ce)
        else:
            if directory.only_on_controller(array):
                src = controller.cluster.controller.name
            else:
                # The P2P source: the up-to-date holder with the best
                # link to the destination (prefer workers over the
                # controller; names break cost ties so the choice never
                # depends on set-iteration order).
                src = min(
                    (h for h in state.up_to_date if h != node_name),
                    key=lambda h: (
                        h == controller.cluster.controller.name,
                        controller.cluster.topology.transfer_seconds(
                            h, node_name, array.nbytes), h))
                if src != controller.cluster.controller.name:
                    controller.stats.count_p2p()
            done = controller.engine.process(
                self._move(array, src, node_name, producer, for_ce=for_ce),
                name=f"move:{array.name}->{node_name}")
        directory.record_replication(
            array, node_name, done, src=src,
            producer_id=last.ce_id if producer is not None else None)
        controller.stats.count_transfer(array.nbytes)
        return done

    def _move(self, array: "ManagedArray", src: str, dst: str,
              producer: "Event | None",
              for_ce: "ComputationalElement | None" = None):
        """Process: wait for the producer, flush source GPUs, cross the wire.

        Failure-aware: an interrupt carrying a node-crash cause makes the
        move re-source from a surviving holder and start over, and a
        transfer that exhausted its fabric retries falls back to another
        source (ultimately the controller) before giving up.
        """
        controller = self.controller
        rescues = 0
        measured_from: float | None = None
        while True:
            try:
                if producer is not None and not producer.processed:
                    yield producer
                if measured_from is None:
                    # Profile from after the producer wait: the wait is
                    # dependency stall, not data movement.
                    measured_from = controller.engine.now
                source_worker = controller.workers.get(src)
                if source_worker is not None:
                    wb = source_worker.writeback_seconds(array)
                    if wb > 0:
                        yield controller.engine.timeout(wb)
                yield from controller.cluster.fabric.transfer_process(
                    src, dst, array.nbytes, label=array.name)
                if controller.profiler is not None and for_ce is not None:
                    controller.profiler.record_transfer(
                        for_ce, controller.engine.now - measured_from,
                        nbytes=array.nbytes, node=dst)
                return array.nbytes
            except Interrupt as intr:
                cause = intr.cause
                if not (isinstance(cause, tuple) and cause
                        and cause[0] == NODE_CRASH):
                    raise
                src = self.surviving_source(array, dst, exclude=cause[1])
                controller.stats.count_rerouted()
            except TransferError:
                rescues += 1
                if rescues > 3 or src == controller.cluster.controller.name:
                    raise
                src = self.surviving_source(array, dst, exclude=src)
                controller.stats.count_rerouted()

    def surviving_source(self, array: "ManagedArray", dst: str,
                         exclude: str | None = None) -> str:
        """Best live holder to re-ship from; the controller is the
        guaranteed last resort (it regains validity if nobody else holds
        the array)."""
        controller = self.controller
        home = controller.cluster.controller.name
        state = controller.directory.state(array)
        candidates = [
            h for h in state.up_to_date
            if h not in (dst, exclude)
            and (h == home or h in controller.workers)
        ]
        if not candidates:
            state.up_to_date.add(home)
            return home
        return min(candidates, key=lambda h: (
            h == home,
            controller.cluster.topology.transfer_seconds(
                h, dst, array.nbytes),
            h))
