"""The staged scheduling pipeline — Algorithm 1 as composable stages.

Historically the whole of Algorithm 1 lived inline in one monolithic
``Controller.schedule`` method.  The pipeline decomposes it into five
explicit stages, each behind the same small interface::

    Stage.process(ce, state: SchedulingState) -> SchedulingState

``AdmissionStage``     Global-DAG insert, frontier waits, fair-share gate
``PlacementStage``     inter-node policy dispatch + decision profiling
``DataMovementStage``  replications that make every parameter up-to-date
``CoherenceStage``     directory read/write transitions + replica drops
``DispatchStage``      worker submit (kernels/prefetches) or host CE

Stages are independently testable and swappable: replacing an entry in
:attr:`SchedulingPipeline.stages` (or subclassing one stage) changes one
phase without touching the others.  The composition is behaviour-
preserving — with one session and default knobs the staged pipeline
produces an event schedule byte-identical to the pre-pipeline build
(``tests/core/pipeline/test_schedule_regression.py`` pins this against a
golden trace).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim import Event
    from repro.core.ce import ComputationalElement
    from repro.core.controller import Controller
    from repro.core.session import Session

__all__ = ["SchedulingState", "Stage", "SchedulingPipeline"]


@dataclass(slots=True)
class SchedulingState:
    """Everything one CE accumulates on its way through the pipeline."""

    ce: "ComputationalElement"
    #: The multi-program session this CE belongs to (None: legacy
    #: single-program path, guaranteed schedule-identical).
    session: "Session | None" = None
    #: ``perf_counter`` stamp taken at admission; placement closes the
    #: decision-cost measurement against it (the Fig. 9 overhead).
    started: float = 0.0
    #: Redundancy-filtered direct ancestors from the Global-DAG insert.
    ancestors: list["ComputationalElement"] = field(default_factory=list)
    #: Events the CE must wait for before executing: ancestor
    #: completions, fair-share throttles, replications, link latency.
    waits: list["Event"] = field(default_factory=list)
    #: Node chosen by the placement stage.
    node: str | None = None
    #: Wall-clock cost of the scheduling decision.
    decision_seconds: float = 0.0
    #: Completion event attached by the dispatch stage.
    done: "Event | None" = None


class Stage(ABC):
    """One phase of Algorithm 1.

    A stage reads and mutates the :class:`SchedulingState` it is handed
    and returns it (returning a different state object is allowed — the
    pipeline threads whatever comes back into the next stage).
    """

    #: Short identifier used in reprs and stage lookups.
    name: str = "stage"

    def __init__(self, controller: "Controller"):
        self.controller = controller

    @abstractmethod
    def process(self, ce: "ComputationalElement",
                state: SchedulingState) -> SchedulingState:
        """Run this phase for one CE."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class SchedulingPipeline:
    """The ordered stage composition the controller runs every CE through."""

    def __init__(self, stages: list[Stage]):
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self.stages = list(stages)

    def stage(self, name: str) -> Stage:
        """Look up a stage by its ``name`` (first match wins)."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"no stage named {name!r}; have "
                       f"{[s.name for s in self.stages]}")

    def replace(self, name: str, stage: Stage) -> Stage:
        """Swap the stage called ``name`` for another; returns the old one.

        The hook that makes phases independently replaceable — e.g. a
        test can substitute a recording placement stage without touching
        admission or dispatch.
        """
        for i, existing in enumerate(self.stages):
            if existing.name == name:
                self.stages[i] = stage
                return existing
        raise KeyError(f"no stage named {name!r}")

    def run(self, ce: "ComputationalElement",
            session: "Session | None" = None) -> SchedulingState:
        """Thread one CE through every stage, in order."""
        state = SchedulingState(ce=ce, session=session)
        for stage in self.stages:
            state = stage.process(ce, state)
        return state

    def __repr__(self) -> str:
        return ("<SchedulingPipeline "
                + " -> ".join(s.name for s in self.stages) + ">")
