"""Admission — Global-DAG insert, frontier waits, fair-share gating.

The first phase of Algorithm 1: the CE joins the Global DAG (per-buffer
frontier scan, redundancy filtering) and inherits a wait on every
still-running direct ancestor.  With multi-program sessions, admission is
also where cross-program fairness is enforced: the :class:`FairShareGate`
bounds how far any one session's program may run ahead of the others on
the shared cluster by inserting a wait on the session's own oldest
outstanding CE once it exceeds its share of the admission window.
"""

from __future__ import annotations

import time
from collections import deque
from typing import TYPE_CHECKING

from repro.core.pipeline.base import SchedulingState, Stage

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim import Event
    from repro.core.ce import ComputationalElement
    from repro.core.controller import Controller

__all__ = ["AdmissionStage", "FairShareGate"]


class FairShareGate:
    """Interleaves CEs from N concurrent sessions onto one cluster.

    Each session may keep at most ``window // n_active`` CEs outstanding
    (scheduled but unfinished) while other sessions are active; past that
    share the gate defers the new CE behind the session's own oldest
    outstanding completion.  A deferred CE is *admitted* immediately —
    only its execution waits — so the gate never blocks the submitting
    program.  With a single session (or none) the gate is inert and the
    event schedule is untouched.
    """

    def __init__(self, window: int = 32, metrics=None):
        if window < 2:
            raise ValueError("fair-share window must be >= 2")
        self.window = window
        self._outstanding: dict[str, deque["Event"]] = {}
        self._throttled = metrics.family(
            "grout_session_throttled_total") if metrics is not None \
            else None

    def _prune(self) -> None:
        emptied = []
        for name, queue in self._outstanding.items():
            while queue and queue[0].processed:
                queue.popleft()
            if not queue:
                emptied.append(name)
        # Drop drained sessions entirely: under churn (hundreds of
        # sessions arriving and departing on a persistent runtime) the
        # dict would otherwise grow one empty deque per session ever
        # seen.  Schedule-neutral — ``admit`` already treats an empty
        # queue and a missing one identically.
        for name in emptied:
            del self._outstanding[name]

    def active_sessions(self) -> list[str]:
        """Sessions with at least one outstanding CE, insertion order."""
        self._prune()
        return [name for name, queue in self._outstanding.items()
                if queue]

    def outstanding(self, session_name: str) -> int:
        """Scheduled-but-unfinished CEs of one session."""
        self._prune()
        queue = self._outstanding.get(session_name)
        return len(queue) if queue is not None else 0

    def share(self, n_active: int) -> int:
        """Per-session outstanding budget with ``n_active`` sessions."""
        return max(1, self.window // max(1, n_active))

    def admit(self, ce: "ComputationalElement",
              state: SchedulingState) -> None:
        """Gate one CE; appends a throttle wait when over-share."""
        session = state.session
        if session is None:
            return
        self._prune()
        active = {name for name, queue in self._outstanding.items()
                  if queue}
        active.add(session.name)
        if len(active) < 2:
            return
        queue = self._outstanding.get(session.name)
        if queue is None:
            return
        share = self.share(len(active))
        if len(queue) >= share:
            # Wait for the oldest outstanding CE whose completion brings
            # the session back under its share.
            state.waits.append(queue[len(queue) - share])
            if self._throttled is not None:
                self._throttled.labels(session=session.name).inc()

    def note_scheduled(self, session_name: str, done: "Event") -> None:
        """Record a freshly dispatched CE's completion event."""
        self._outstanding.setdefault(session_name, deque()).append(done)


class AdmissionStage(Stage):
    """DAG insert + frontier waits (+ the multi-session fair-share gate)."""

    name = "admission"

    def __init__(self, controller: "Controller",
                 gate: FairShareGate | None = None):
        super().__init__(controller)
        self.gate = gate if gate is not None else FairShareGate()

    def process(self, ce, state: SchedulingState) -> SchedulingState:
        """Run this phase for one CE (see the class docstring)."""
        state.started = time.perf_counter()
        if state.session is not None:
            state.session.tag(ce)
        state.ancestors = self.controller.dag.add(ce)
        state.waits.extend(
            a.done for a in state.ancestors
            if a.done is not None and not a.done.processed)
        self.gate.admit(ce, state)
        return state
