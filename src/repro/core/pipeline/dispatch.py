"""Dispatch — hand the CE to its executor and close the bookkeeping.

The last phase of Algorithm 1: kernels and prefetches are forwarded to
the chosen worker's intra-node scheduler (Algorithm 2) after charging
the controller→worker link latency; host-side CEs run on the controller
at host-memory streaming bandwidth.  The stage attaches the completion
event, credits the policy, and lands the per-kind / per-session
scheduling counters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.ce import CeKind
from repro.core.pipeline.base import SchedulingState, Stage

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim import Event
    from repro.core.ce import ComputationalElement
    from repro.core.controller import Controller
    from repro.core.pipeline.admission import FairShareGate

__all__ = ["DispatchStage", "HOST_MEM_BANDWIDTH"]

#: Host memory streaming bandwidth charged for host-side CE bodies.
HOST_MEM_BANDWIDTH = 20e9


class DispatchStage(Stage):
    """Forward the CE to a worker (or run it host-side) and bookkeep."""

    name = "dispatch"

    def __init__(self, controller: "Controller",
                 gate: "FairShareGate | None" = None):
        super().__init__(controller)
        self.gate = gate
        self._session_ces = controller.metrics.family(
            "grout_session_ces_scheduled_total")

    def process(self, ce, state: SchedulingState) -> SchedulingState:
        """Run this phase for one CE (see the class docstring)."""
        controller = self.controller
        if ce.kind in (CeKind.KERNEL, CeKind.PREFETCH):
            latency = controller.cluster.topology.latency(
                controller.cluster.controller.name, state.node)
            if latency > 0:
                state.waits.append(controller.engine.timeout(
                    latency, name=f"ctl->{state.node}"))
            done = controller.workers[state.node].submit(ce, state.waits)
        else:
            done = self.run_host_ce(ce, state.waits)
        ce.done = done
        state.done = done
        controller.policy.notify_scheduled(ce)
        controller._pending.append(done)
        controller.stats.count_ce(ce.kind.value)
        if state.session is not None:
            self._session_ces.labels(session=state.session.name).inc()
            state.session.note_scheduled(done)
            if self.gate is not None:
                self.gate.note_scheduled(state.session.name, done)
        return state

    # -- host-side CEs ---------------------------------------------------------

    def run_host_ce(self, ce: "ComputationalElement",
                    waits: list["Event"]) -> "Event":
        """Run a host-side CE on the controller at host-memory bandwidth."""
        engine = self.controller.engine

        def body():
            if waits:
                yield engine.all_of(waits)
            nbytes = ce.param_bytes
            if nbytes:
                yield engine.timeout(nbytes / HOST_MEM_BANDWIDTH)
            result = ce.host_body() if ce.host_body is not None else None
            return result

        return engine.process(body(), name=ce.display_name)
