"""Placement — the inter-node policy decision, timed like Fig. 9.

Kernels go to whichever worker the active :class:`~repro.core.policies.
Policy` picks; prefetches honour user-directed placement first (the
hand-tuning primitive) and fall back to the policy; host-side CEs always
run on the controller.  The wall-clock cost of the decision — DAG insert
included, measured from the admission stamp — lands in the
``grout_decision_seconds`` histogram and the per-CE profiler.
"""

from __future__ import annotations

import time

from repro.core.ce import CeKind
from repro.core.pipeline.base import SchedulingState, Stage

__all__ = ["PlacementStage"]


class PlacementStage(Stage):
    """Apply the node-level scheduling policy and profile the decision."""

    name = "placement"

    def process(self, ce, state: SchedulingState) -> SchedulingState:
        """Run this phase for one CE (see the class docstring)."""
        controller = self.controller
        if ce.kind is CeKind.KERNEL:
            node_name = controller.policy.assign(ce, controller.context)
        elif ce.kind is CeKind.PREFETCH:
            # User-directed placement; falls back to the policy when no
            # node was named.
            node_name = ce.assigned_node or controller.policy.assign(
                ce, controller.context)
        else:
            node_name = controller.cluster.controller.name
        state.decision_seconds = time.perf_counter() - state.started
        controller.stats.observe_decision(state.decision_seconds)
        if controller.profiler is not None:
            controller.profiler.record_sched(
                ce, state.decision_seconds, node=node_name)
        ce.assigned_node = node_name
        state.node = node_name
        return state
