"""The controller's staged scheduling pipeline (Algorithm 1, decomposed).

Five stages behind one interface — ``Stage.process(ce, state)`` — that
the :class:`~repro.core.controller.Controller` threads every CE through:
admission, placement, data movement, coherence, dispatch.  See
:mod:`repro.core.pipeline.base` for the contract and the behaviour-
preservation guarantee.
"""

from repro.core.pipeline.admission import AdmissionStage, FairShareGate
from repro.core.pipeline.base import (SchedulingPipeline, SchedulingState,
                                      Stage)
from repro.core.pipeline.coherence import CoherenceStage
from repro.core.pipeline.dispatch import HOST_MEM_BANDWIDTH, DispatchStage
from repro.core.pipeline.movement import (NODE_CRASH, DataMovementStage,
                                          FastMove)
from repro.core.pipeline.placement import PlacementStage

__all__ = [
    "AdmissionStage",
    "CoherenceStage",
    "DataMovementStage",
    "DispatchStage",
    "FairShareGate",
    "FastMove",
    "HOST_MEM_BANDWIDTH",
    "NODE_CRASH",
    "PlacementStage",
    "SchedulingPipeline",
    "SchedulingState",
    "Stage",
]
