"""Coherence — directory transitions, applied in program order.

Reads join the array's ``up_to_date`` set via the directory; writes make
the chosen node the sole valid holder and invalidate every other replica,
which this stage also physically drops from the losing workers' GPU pools
so stale bytes can't linger in device memory.  The transitions happen at
schedule time (here and now), not completion time: the directory tracks
*program-order* validity, and the in-flight machinery layered on top
handles the temporal gap.
"""

from __future__ import annotations

from repro.core.pipeline.base import SchedulingState, Stage

__all__ = ["CoherenceStage"]


class CoherenceStage(Stage):
    """Record read/write transitions and drop invalidated replicas."""

    name = "coherence"

    def process(self, ce, state: SchedulingState) -> SchedulingState:
        """Run this phase for one CE (see the class docstring)."""
        assert state.node is not None, "placement must run before coherence"
        controller = self.controller
        for array in ce.reads:
            controller.directory.record_read(array, ce)
        for array in ce.writes:
            invalidated = controller.directory.record_write(
                array, state.node, ce)
            for victim in invalidated:
                worker = controller.workers.get(victim)
                if worker is not None:
                    worker.drop_replica(array)
        return state
