"""KPI-driven autoscaling — the heuristic model §V-F sketches.

"There exists a direct link between execution time and oversubscription
factor that might be exploited to set desired Key Performance Indicators
(KPI) to be maintained during the workload execution."  This module
implements that sketch: the autoscaler watches the cluster's
oversubscription pressure (the observable that *causes* the execution-time
cliff) and provisions workers until every node sits at or below a target
OSF — by default just under the earliest degradation knee of the
calibrated UVM model.

Two modes:

* :meth:`KpiAutoscaler.plan` — static sizing: given a footprint, how many
  nodes keep each under the target?  (What a user would call before
  submitting a job.)
* :meth:`KpiAutoscaler.step` — reactive: inspect the live runtime and add
  workers while the observed pressure exceeds the target.  Call it between
  workload phases (scheduling is eager, so calling it before the CE wave
  is what lets the new nodes absorb work).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.runtime import GroutRuntime

#: Default KPI: keep every node's OSF at/below 1.0 — under the earliest
#: knee (RANDOM at 1.05) of the calibrated degradation curves, i.e. out of
#: the cliff region for every access pattern.
DEFAULT_TARGET_OSF = 1.0


@dataclass(frozen=True, slots=True)
class ScalingDecision:
    """One autoscaler recommendation/action."""

    current_workers: int
    recommended_workers: int
    observed_osf: float        # max per-node OSF that triggered it
    target_osf: float
    added: tuple[str, ...] = ()    # worker names provisioned (step mode)

    @property
    def scaled(self) -> bool:
        """Whether the decision adds workers."""
        return self.recommended_workers > self.current_workers


@dataclass(slots=True)
class KpiAutoscaler:
    """Keeps a GrOUT cluster's per-node oversubscription under a target.

    Parameters
    ----------
    target_osf:
        The KPI: maximum tolerated per-node oversubscription factor.
    max_workers:
        Provisioning cap (the paper notes cloud scale-up tops out, but
        scale-out budgets are finite too).
    """

    target_osf: float = DEFAULT_TARGET_OSF
    max_workers: int = 16
    decisions: list[ScalingDecision] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.target_osf <= 0:
            raise ValueError("target_osf must be positive")
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")

    # -- static sizing ------------------------------------------------------

    def workers_for(self, footprint_bytes: int,
                    node_gpu_bytes: int) -> int:
        """Nodes needed to keep per-node OSF at/below the target."""
        if footprint_bytes <= 0:
            return 1
        need = footprint_bytes / (self.target_osf * node_gpu_bytes)
        return max(1, min(self.max_workers, math.ceil(need - 1e-9)))

    def plan(self, footprint_bytes: int, node_gpu_bytes: int,
             current_workers: int = 1) -> ScalingDecision:
        """Static recommendation for a known footprint."""
        recommended = max(current_workers,
                          self.workers_for(footprint_bytes,
                                           node_gpu_bytes))
        decision = ScalingDecision(
            current_workers=current_workers,
            recommended_workers=recommended,
            observed_osf=footprint_bytes
            / (current_workers * node_gpu_bytes),
            target_osf=self.target_osf,
        )
        self.decisions.append(decision)
        return decision

    # -- reactive scaling --------------------------------------------------------

    def observed_pressure(self, runtime: GroutRuntime) -> float:
        """The live KPI: the worst per-node OSF across the cluster, or —
        if higher — the *pending demand* per node.

        Demand (bytes registered with the controller ÷ cluster GPU
        memory) anticipates allocations that have not landed on workers
        yet, so scaling can happen before the first launch wave instead
        of after the damage is done.
        """
        observed = max((w.oversubscription()
                        for w in runtime.cluster.workers), default=0.0)
        capacity = runtime.cluster.total_gpu_memory_bytes
        demand = (runtime.controller.directory.total_bytes / capacity
                  if capacity else 0.0)
        return max(observed, demand)

    def step(self, runtime: GroutRuntime) -> ScalingDecision:
        """Provision workers while the observed pressure exceeds the KPI.

        Node memory is assumed homogeneous (the paper's setup); each new
        worker proportionally dilutes future placements, so the projected
        pressure after adding ``k`` nodes is ``observed * n / (n + k)``.
        """
        current = len(runtime.cluster.workers)
        observed = self.observed_pressure(runtime)
        added: list[str] = []
        workers = current
        while (workers < self.max_workers
               and observed * current / workers > self.target_osf):
            added.append(runtime.controller.add_worker())
            workers += 1
        decision = ScalingDecision(
            current_workers=current,
            recommended_workers=workers,
            observed_osf=observed,
            target_osf=self.target_osf,
            added=tuple(added),
        )
        self.decisions.append(decision)
        return decision
