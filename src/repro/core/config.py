"""RuntimeConfig — every construction knob of a GrOUT/GrCUDA runtime.

Historically the knobs lived in three places at once: positional
arguments of :class:`~repro.core.runtime.GroutRuntime`, keyword
arguments of :class:`~repro.core.controller.Controller`, and four
hand-copied kwargs blocks in ``cli.py``.  Every new knob meant touching
all of them.  :class:`RuntimeConfig` is now the single owner: the CLI
parses into it (:meth:`from_args`), the serve daemon deserialises it
(:meth:`from_dict`), benchmarks overlay it (:meth:`merge`), and all of
them construct runtimes the same way (:meth:`build_runtime`).

The defaults reproduce the paper configuration exactly — a
``RuntimeConfig()`` built runtime is schedule-identical to
``GroutRuntime(paper_cluster(2))``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Mapping

from repro.core.policies import ExplorationLevel, Policy
from repro.gpu.specs import MIB

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim import FaultPlan

__all__ = ["RuntimeConfig", "page_size_for"]

#: Modes a config can build.
MODES = ("grout", "grcuda")


def page_size_for(footprint_bytes: int) -> int:
    """Adaptive UVM granule: coarse pages for big sweeps, capped both ways.

    Timing depends only on byte counts, so granularity is a pure
    simulation-speed knob; it must merely stay small relative to the
    per-kernel working sets.
    """
    target = min(max(footprint_bytes // 4096, 256 * 1024), 32 * MIB)
    # Power of two so the granule divides every device memory size.
    return 1 << (int(target).bit_length() - 1)


@dataclass(frozen=True, slots=True)
class RuntimeConfig:
    """One immutable record of every runtime-construction knob.

    Field groups mirror the layers they configure: the runtime/controller
    pair (``policy`` .. ``prune_every``), the cluster under it
    (``n_workers`` .. ``seed``) and the fault plan armed on top
    (``faults``/``replace_crashed``).  ``policy`` and ``gpu_spec`` accept
    either resolved objects or registry names, so configs stay
    JSON-serialisable end to end (:meth:`as_dict`/:meth:`from_dict`).
    """

    # -- what to build ---------------------------------------------------------
    mode: str = "grout"                    # "grout" | "grcuda"

    # -- runtime / controller knobs --------------------------------------------
    policy: "Policy | str" = "vector-step"
    level: "ExplorationLevel | str" = "medium"
    max_streams_per_gpu: int = 4
    chunk_bytes: int | None = None
    collectives: bool = False
    fair_share_window: int = 32
    prune_every: int = 256
    plan_cache: bool = False
    shards: int | None = None
    shard_window: float | None = None
    shard_max_outstanding: int | None = None

    # -- cluster knobs ---------------------------------------------------------
    n_workers: int = 2
    gpus_per_worker: int = 2
    gpu_spec: object | None = None         # GpuSpec instance or name
    page_size: int | None = None           # None -> adaptive per footprint
    uvm_backend: str | None = None
    seed: int = 0

    # -- fault injection -------------------------------------------------------
    faults: "FaultPlan | str | None" = None
    replace_crashed: bool = False

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, "
                             f"got {self.mode!r}")
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.gpus_per_worker < 1:
            raise ValueError("gpus_per_worker must be >= 1")
        if self.chunk_bytes is not None and self.chunk_bytes < 1:
            raise ValueError("chunk_bytes must be >= 1")
        if self.fair_share_window < 2:
            raise ValueError("fair_share_window must be >= 2")
        if self.prune_every < 1:
            raise ValueError("prune_every must be >= 1")
        if self.shards is not None and self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.page_size is not None and self.page_size < 1:
            raise ValueError("page_size must be >= 1")

    # -- construction from other shapes ----------------------------------------

    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        """Every config field, declaration order."""
        return tuple(f.name for f in fields(cls))

    @classmethod
    def from_args(cls, args: object, **overrides: object) -> "RuntimeConfig":
        """Build from an ``argparse.Namespace`` (unknown attrs ignored).

        The CLI spells two fields differently (``--workers`` →
        ``n_workers``, ``--replace-crashed`` → ``replace_crashed``);
        everything else maps by name.  Explicit ``overrides`` win over
        namespace values.
        """
        picked: dict[str, object] = {}
        aliases = {"n_workers": "workers"}
        for name in cls.field_names():
            for attr in (name, aliases.get(name, name)):
                if hasattr(args, attr):
                    picked[name] = getattr(args, attr)
                    break
        picked.update(overrides)
        return cls(**picked)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "RuntimeConfig":
        """Build from a JSON-shaped mapping; unknown keys raise."""
        unknown = set(payload) - set(cls.field_names())
        if unknown:
            raise ValueError(
                f"unknown runtime config key(s): {sorted(unknown)}")
        return cls(**dict(payload))

    def merge(self, other: "Mapping[str, object] | RuntimeConfig | None"
              = None, **overrides: object) -> "RuntimeConfig":
        """A new config with ``other``'s keys (then ``overrides``) applied.

        ``other`` may be a partial mapping (only the named fields change)
        or another config (whose full field set replaces this one's).
        """
        changes: dict[str, object] = {}
        if isinstance(other, RuntimeConfig):
            changes.update(other.as_dict(resolved=True))
        elif other is not None:
            unknown = set(other) - set(self.field_names())
            if unknown:
                raise ValueError(
                    f"unknown runtime config key(s): {sorted(unknown)}")
            changes.update(other)
        changes.update(overrides)
        return dataclasses.replace(self, **changes)

    # -- serialisation ---------------------------------------------------------

    def as_dict(self, *, resolved: bool = False) -> dict[str, object]:
        """The config as a plain dict.

        With ``resolved=False`` (the JSON shape) non-serialisable values
        are reduced to names: a :class:`Policy` instance becomes its
        ``name``, a ``GpuSpec`` its ``name`` attribute, an armed
        :class:`FaultPlan` its spec string.  ``resolved=True`` keeps the
        objects as-is (lossless, for :meth:`merge`).
        """
        out: dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if not resolved:
                if f.name == "policy" and isinstance(value, Policy):
                    value = value.name
                elif f.name == "level" and isinstance(value,
                                                      ExplorationLevel):
                    value = value.name.lower()
                elif f.name == "gpu_spec" and value is not None \
                        and not isinstance(value, str):
                    value = getattr(value, "name", str(value))
                elif f.name == "faults" and value is not None \
                        and not isinstance(value, str):
                    value = getattr(value, "spec", str(value))
            out[f.name] = value
        return out

    # -- resolution helpers ----------------------------------------------------

    @property
    def exploration_level(self) -> ExplorationLevel:
        """``level`` as the enum the policy registry expects."""
        if isinstance(self.level, ExplorationLevel):
            return self.level
        return ExplorationLevel[str(self.level).upper()]

    def fault_plan(self) -> "FaultPlan | None":
        """``faults`` parsed into a :class:`FaultPlan` (or ``None``)."""
        if self.faults is None:
            return None
        if isinstance(self.faults, str):
            from repro.sim import FaultPlan
            return FaultPlan.parse(self.faults)
        return self.faults

    def resolve_gpu_spec(self):
        """``gpu_spec`` as a ``GpuSpec`` (names looked up in ``repro.gpu``)."""
        if self.gpu_spec is None or not isinstance(self.gpu_spec, str):
            return self.gpu_spec
        import repro.gpu as gpu_mod
        spec = getattr(gpu_mod, self.gpu_spec, None)
        if spec is None:
            raise ValueError(f"unknown GPU spec name {self.gpu_spec!r}")
        return spec

    def build_policy(self, workload: object | None = None) -> Policy:
        """The inter-node policy this config names.

        ``vector-step`` is the offline roofline and needs the workload's
        profiled vector (``workload.tuned_vector(n_workers)``); every
        other name resolves through the policy registry.  Passing a
        prebuilt :class:`Policy` instance short-circuits both.
        """
        from repro.core.policies import VectorStepPolicy, make_policy
        if isinstance(self.policy, Policy):
            return self.policy
        if self.policy == "vector-step":
            if workload is None:
                raise ValueError(
                    "policy 'vector-step' needs the workload (its tuned "
                    "placement vector); pass workload= or pick an online "
                    "policy such as 'round-robin'")
            return VectorStepPolicy(workload.tuned_vector(self.n_workers))
        return make_policy(self.policy, level=self.exploration_level)

    # -- builders --------------------------------------------------------------

    def cluster_kwargs(self, footprint_bytes: int | None = None) -> dict:
        """Keyword arguments for :func:`repro.cluster.paper_cluster`."""
        page_size = self.page_size
        if page_size is None and footprint_bytes is not None:
            page_size = page_size_for(footprint_bytes)
        kwargs: dict[str, object] = {
            "page_size": page_size,
            "seed": self.seed,
            "uvm_backend": self.uvm_backend,
            "gpus_per_worker": self.gpus_per_worker,
        }
        spec = self.resolve_gpu_spec()
        if spec is not None:
            kwargs["gpu_spec"] = spec
        return kwargs

    def to_kwargs(self) -> dict[str, object]:
        """Keyword arguments for ``GroutRuntime(cluster, policy=..., **kw)``.

        Covers the runtime/controller knobs only — the cluster is built
        separately (:meth:`build_cluster`) and the policy through
        :meth:`build_policy`, so callers with a prebuilt cluster keep
        full control.
        """
        return {
            "max_streams_per_gpu": self.max_streams_per_gpu,
            "chunk_bytes": self.chunk_bytes,
            "collectives": self.collectives,
            "fair_share_window": self.fair_share_window,
            "prune_every": self.prune_every,
            "plan_cache": self.plan_cache,
            "shards": self.shards,
            "shard_window": self.shard_window,
            "shard_max_outstanding": self.shard_max_outstanding,
        }

    def build_cluster(self, footprint_bytes: int | None = None):
        """A fresh :class:`~repro.cluster.Cluster` per this config."""
        from repro.cluster import paper_cluster
        return paper_cluster(self.n_workers,
                             **self.cluster_kwargs(footprint_bytes))

    def build_runtime(self, *, workload: object | None = None,
                      footprint_bytes: int | None = None,
                      cluster: object | None = None):
        """Construct the configured runtime, fault plan armed.

        ``mode == "grcuda"`` returns the single-node baseline;
        ``"grout"`` builds the cluster (unless one is passed in), the
        policy (``workload`` feeds ``vector-step``) and the distributed
        runtime.  ``footprint_bytes`` sizes the adaptive UVM granule when
        ``page_size`` is unset.
        """
        if self.mode == "grcuda":
            if self.faults is not None:
                raise ValueError("fault injection requires mode='grout'")
            if self.chunk_bytes is not None or self.collectives \
                    or self.plan_cache:
                raise ValueError("chunk_bytes/collectives/plan_cache "
                                 "require mode='grout'")
            from repro.core.grcuda import GrCudaRuntime
            page_size = self.page_size
            if page_size is None and footprint_bytes is not None:
                page_size = page_size_for(footprint_bytes)
            return GrCudaRuntime(page_size=page_size, seed=self.seed,
                                 uvm_backend=self.uvm_backend)
        from repro.core.runtime import GroutRuntime
        if cluster is None:
            cluster = self.build_cluster(footprint_bytes)
        runtime = GroutRuntime(cluster,
                               policy=self.build_policy(workload),
                               **self.to_kwargs())
        plan = self.fault_plan()
        if plan is not None:
            runtime.install_faults(
                plan, request_replacement=self.replace_crashed)
        return runtime

    # -- CLI plumbing ----------------------------------------------------------

    @staticmethod
    def add_cli_args(parser, *, default_policy: str = "vector-step") -> None:
        """Declare the shared runtime flags on an argparse (sub)parser.

        One declaration instead of a hand-copied block per subcommand;
        :meth:`from_args` reads the resulting namespace back.
        """
        from repro.uvm import DEFAULT_BACKEND, PAGING_BACKENDS
        parser.add_argument("--workers", type=int, default=2,
                            help="GrOUT worker count (default 2)")
        parser.add_argument("--policy", default=default_policy,
                            help="any name from "
                                 "repro.core.available_policies()")
        parser.add_argument("--level", default="medium",
                            choices=("low", "medium", "high"),
                            help="exploration level for online policies")
        parser.add_argument("--chunk-bytes", type=int, default=None,
                            metavar="N", dest="chunk_bytes",
                            help="pipeline fabric transfers as N-byte "
                                 "chunks (grout only; default: "
                                 "whole-array sends)")
        parser.add_argument("--collectives", action="store_true",
                            help="coalesce broadcast-shaped replication "
                                 "into relay chains (grout only)")
        parser.add_argument("--uvm-backend", default=DEFAULT_BACKEND,
                            choices=sorted(PAGING_BACKENDS),
                            dest="uvm_backend",
                            help="paging backend pricing UVM faults "
                                 "(default cpu-pme, the paper's "
                                 "CPU-driven page-migration engine)")
        parser.add_argument("--fair-share-window", type=int, default=32,
                            metavar="N", dest="fair_share_window",
                            help="admission window interleaving "
                                 "concurrent sessions (default 32)")
        parser.add_argument("--plan-cache", action="store_true",
                            dest="plan_cache",
                            help="memoize per-session scheduling "
                                 "decisions and replay them for "
                                 "repeated programs (default off)")

    def __repr__(self) -> str:
        knobs = []
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                knobs.append(f"{f.name}={value!r}")
        return f"<RuntimeConfig {' '.join(knobs) or 'paper defaults'}>"
