"""Intra-node scheduling — Algorithm 2, GrCUDA's runtime scheduler [27].

Each worker keeps a **Local DAG** (partial view of the workload), assigns
every incoming CE to a CUDA stream on one of its GPUs, and guards
correctness with async wait-events on ancestor computations.  Stream
assignment follows GrCUDA's heuristic: a CE with a single local parent
inherits the parent's stream (FIFO order already serialises them); anything
else lands on an idle — or failing that, fresh — stream of the least-loaded
GPU, maximising transfer/compute and compute/compute overlap.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.cluster.node import Node
from repro.gpu.device import Gpu
from repro.gpu.kernel import KernelLaunch
from repro.gpu.stream import Stream
from repro.obs import CeProfiler, MetricsRegistry
from repro.obs import install as install_metrics
from repro.sim import Event
from repro.core.ce import CeKind, ComputationalElement
from repro.core.dag import DependencyDag
from repro.uvm.perfmodel import KernelCost


def _ce_completed(ce: ComputationalElement) -> bool:
    """Prune predicate: the CE's completion event was delivered."""
    done = ce.done
    return done is not None and done.processed


class IntraNodeScheduler:
    """One worker's GPU-stream scheduler (the second hierarchy layer)."""

    def __init__(self, node: Node, *, max_streams_per_gpu: int = 4,
                 prune_every: int = 64,
                 metrics: MetricsRegistry | None = None,
                 profiler: CeProfiler | None = None):
        if not node.has_gpus:
            raise ValueError(f"{node!r} has no GPUs to schedule on")
        if max_streams_per_gpu < 1:
            raise ValueError("max_streams_per_gpu must be >= 1")
        if prune_every < 1:
            raise ValueError("prune_every must be >= 1")
        self.node = node
        self.max_streams_per_gpu = max_streams_per_gpu
        self.local_dag = DependencyDag()
        self.profiler = profiler
        self.metrics = install_metrics(metrics) if metrics is not None \
            else None
        if self.metrics is not None:
            self._m_launches = self.metrics.family(
                "grout_kernel_launches_total")
            self._m_prefetches = self.metrics.family(
                "grout_prefetches_total")
            self._m_kernel_seconds = self.metrics.family(
                "grout_kernel_seconds")
            self._m_pending = self.metrics.family(
                "grout_gpu_pending_bytes")
            self._m_streams = self.metrics.family("grout_streams_open")
            self._m_osf = self.metrics.family(
                "grout_node_oversubscription")
            self._m_uvm_cold = self.metrics.family(
                "grout_uvm_cold_bytes_total")
            self._m_uvm_refault = self.metrics.family(
                "grout_uvm_refault_bytes_total")
            self._m_uvm_writeback = self.metrics.family(
                "grout_uvm_writeback_bytes_total")
            self._m_uvm_thrash = self.metrics.family(
                "grout_uvm_thrashing_launches_total")
        else:
            self._m_launches = self._m_prefetches = None
            self._m_kernel_seconds = self._m_pending = None
            self._m_streams = self._m_osf = None
            self._m_uvm_cold = self._m_uvm_refault = None
            self._m_uvm_writeback = self._m_uvm_thrash = None
        # Bound label handles, cached on first use: ``family.labels()``
        # validates names and takes the registry lock on every call — too
        # much for per-event paths.  Lazy (not eager) so children only
        # exist once an event actually touched them.
        self._h_pending: dict[int, object] = {}
        self._h_streams: dict[int, object] = {}
        self._h_launches: dict[int, object] = {}
        self._h_prefetches: dict[int, object] = {}
        self._h_kernel_seconds = None
        self._h_osf = None
        # (cold, refault, writeback, thrash) handles — one tuple per
        # node: the (node, backend) labels never vary within a scheduler.
        self._h_uvm = None
        self._prune_every = prune_every
        self._completions = 0
        self._pending_load: dict[int, float] = {g.gpu_id: 0.0
                                                for g in node.gpus}
        self._stream_of: dict[int, Stream] = {}    # ce_id -> stream
        self._planned_gpu: dict[int, int] = {}     # buffer_id -> gpu_id
        #: Recent (CE, cost) window for inspection and tests.  Bounded:
        #: retaining every pair would pin all CEs in memory on
        #: million-launch runs.  Exact per-kernel aggregates live in
        #: :attr:`kernel_totals`.
        self.kernel_costs: deque[tuple[ComputationalElement, KernelCost]] = \
            deque(maxlen=1024)
        #: kernel name -> [launch count, total priced seconds]; exact over
        #: the node's lifetime (what the run report aggregates).
        self.kernel_totals: dict[str, list] = {}

    # -- observability hooks ---------------------------------------------------

    def _note_pending(self, gpu_id: int) -> None:
        """Mirror one GPU's queued byte load into its gauge."""
        if self._m_pending is not None:
            handle = self._h_pending.get(gpu_id)
            if handle is None:
                handle = self._h_pending[gpu_id] = self._m_pending.labels(
                    node=self.node.name, gpu=str(gpu_id))
            handle.set(self._pending_load[gpu_id])

    def _note_streams(self, gpu: Gpu) -> None:
        """Mirror one GPU's open-stream count into its gauge."""
        if self._m_streams is not None:
            handle = self._h_streams.get(gpu.gpu_id)
            if handle is None:
                handle = self._h_streams[gpu.gpu_id] = self._m_streams.labels(
                    node=self.node.name, gpu=str(gpu.gpu_id))
            handle.set(len(gpu.streams))

    def _note_oversubscription(self) -> None:
        """Publish the node's current OSF (the paper's operating point)."""
        if self._m_osf is not None and self.node.uvm is not None:
            if self._h_osf is None:
                self._h_osf = self._m_osf.labels(node=self.node.name)
            self._h_osf.set(self.node.uvm.oversubscription)

    def _note_uvm_cost(self, cost: KernelCost) -> None:
        """Publish one priced launch's fault traffic, keyed by backend."""
        if self._m_uvm_cold is None or self.node.uvm is None:
            return
        handles = self._h_uvm
        if handles is None:
            labels = {"node": self.node.name,
                      "backend": self.node.uvm.backend.name}
            handles = self._h_uvm = (
                self._m_uvm_cold.labels(**labels),
                self._m_uvm_refault.labels(**labels),
                self._m_uvm_writeback.labels(**labels),
                self._m_uvm_thrash.labels(**labels),
            )
        if cost.cold_bytes:
            handles[0].inc(cost.cold_bytes)
        if cost.refault_bytes:
            handles[1].inc(cost.refault_bytes)
        if cost.writeback_bytes:
            handles[2].inc(cost.writeback_bytes)
        if cost.thrashing:
            handles[3].inc()

    # -- Algorithm 2 -----------------------------------------------------------

    def submit(self, ce: ComputationalElement,
               waits: Sequence[Event] = (), *,
               fresh_stream: bool = False) -> Event:
        """Place a kernel or prefetch CE on a stream; returns its
        completion event.

        ``fresh_stream`` bypasses the FIFO-reuse heuristics (crash
        re-execution): a recovered CE enqueued behind a pre-crash op
        that transitively *depends on it* would deadlock the stream, so
        it must land on an idle — or entirely new — stream, with
        correctness carried by ``waits`` alone.
        """
        if ce.kind is CeKind.PREFETCH:
            return self._submit_prefetch(ce, waits,
                                         fresh_stream=fresh_stream)
        if ce.kind is not CeKind.KERNEL:
            raise ValueError(f"intra-node scheduler only takes kernels, "
                             f"got {ce.kind}")
        assert ce.kernel is not None and ce.config is not None

        # Add CE to the Local DAG's frontier (partial view of the workload).
        local_parents = self.local_dag.add(ce)

        # Apply the intra-node scheduling policy.
        gpu = self._select_gpu(ce, local_parents)
        if fresh_stream:
            stream = self._fresh_stream(gpu)
        else:
            stream = self._select_stream(gpu, ce, local_parents)
        ce.assigned_lane = stream.lane
        self._stream_of[ce.ce_id] = stream

        uvm = self.node.uvm
        assert uvm is not None
        # Node-level footprint bookkeeping happens at submit time: the CE's
        # parameters now belong to this node's UVM space (its OSF rises),
        # even though page migration is priced at execution time.
        for array in ce.arrays:
            uvm.register(array)

        # Exec CE & add sync events on ancestors.  Only program-order
        # predecessors count: a crash re-execution inserts an *earlier*
        # CE after later ones, and a WAR edge pointing backward in
        # program order would deadlock against the global-DAG waits.
        parent_waits = [p.done for p in local_parents
                        if p.done is not None and not p.done.processed
                        and p.ce_id < ce.ce_id]
        launch = KernelLaunch(ce.kernel, ce.config, tuple(ce.args),
                              tuple(ce.accesses))
        load = float(launch.touched_bytes)
        self._pending_load[gpu.gpu_id] += load
        self._note_pending(gpu.gpu_id)
        self._note_streams(gpu)
        engine = self.node.engine
        submitted = engine.now

        # The op runs as a generator-free callback chain (FastOp): begin()
        # at stream start, then hold-the-link / sleep hops, then fin().
        # Queue-hop parity with the old generator body keeps the event
        # schedule byte-identical; each hop skips the Process machinery.
        def begin(op):
            started = op.started_at
            if self.profiler is not None:
                # Time between submission and stream start is stall:
                # FIFO queueing plus ancestor/data waits.
                self.profiler.record_stall(ce, started - submitted,
                                           node=self.node.name)
            # Parameters register at execution time: a coherence
            # invalidation issued for a *later* CE (program order) must not
            # strip a queued kernel of its own registrations.
            for array in ce.arrays:
                uvm.register(array)
            self._note_oversubscription()
            probe = ce.cost_probe
            if probe is None:
                cost = uvm.price_kernel(gpu, launch)
            else:
                # Plan-cache hook: record the launch's effect alongside
                # live pricing, or replay a recorded transition.
                cost = probe(uvm, gpu, launch)
            self._note_uvm_cost(cost)
            self.kernel_costs.append((ce, cost))
            totals = self.kernel_totals.get(ce.kernel.name)
            if totals is None:
                self.kernel_totals[ce.kernel.name] = [1, cost.duration]
            else:
                totals[0] += 1
                totals[1] += cost.duration

            def fin(op, cost=cost, started=started):
                if ce.kernel.executor is not None:
                    ce.kernel.executor(*ce.args)
                if self._m_launches is not None:
                    handle = self._h_launches.get(gpu.gpu_id)
                    if handle is None:
                        handle = self._h_launches[gpu.gpu_id] = \
                            self._m_launches.labels(node=self.node.name,
                                                    gpu=str(gpu.gpu_id))
                    handle.inc()
                    if self._h_kernel_seconds is None:
                        self._h_kernel_seconds = \
                            self._m_kernel_seconds.labels(
                                node=self.node.name)
                    self._h_kernel_seconds.observe(engine.now - started)
                if self.profiler is not None:
                    self.profiler.record_compute(ce, engine.now - started,
                                                 node=self.node.name,
                                                 lane=stream.lane)
                op.finish(cost)

            # The fault/migration phase holds the GPU's host link so that
            # concurrent streams do not each enjoy full PCIe bandwidth.
            link_seconds = cost.migration_seconds + cost.thrash_seconds
            remainder = max(0.0, cost.duration - link_seconds)
            if link_seconds > 0:
                op.hold_then_sleep(gpu.host_link, link_seconds,
                                   remainder, fin)
            else:
                op.sleep(remainder, fin)

        meta = {"ce": ce.ce_id}
        if ce.session is not None:
            meta["session"] = ce.session
        done = stream.enqueue_call(begin, name=ce.display_name,
                                   category="kernel",
                                   waits=list(waits) + parent_waits,
                                   meta=meta)
        done.callbacks.append(
            lambda _ev: self._complete(gpu.gpu_id, load, ce))
        return done

    def _submit_prefetch(self, ce: ComputationalElement,
                         waits: Sequence[Event], *,
                         fresh_stream: bool = False) -> Event:
        """``cudaMemPrefetchAsync``: stream-ordered bulk migration."""
        self.local_dag.add(ce)
        uvm = self.node.uvm
        assert uvm is not None
        gpu_index = int(ce.args[0]) if ce.args else 0
        gpu = self.node.gpus[gpu_index % len(self.node.gpus)]
        stream = (self._fresh_stream(gpu) if fresh_stream
                  else gpu.default_stream())
        ce.assigned_lane = stream.lane
        self._stream_of[ce.ce_id] = stream
        for array in ce.arrays:
            uvm.register(array)
            # Locality bookkeeping follows the prefetch by design.
            self._planned_gpu[array.buffer_id] = gpu.gpu_id
        engine = self.node.engine
        submitted = engine.now

        def begin(op):
            started = op.started_at
            if self.profiler is not None:
                self.profiler.record_stall(ce, started - submitted,
                                           node=self.node.name)
            self._note_oversubscription()
            seconds = sum(uvm.prefetch(gpu, array) for array in ce.arrays)

            def fin(op, seconds=seconds, started=started):
                if self._m_prefetches is not None:
                    handle = self._h_prefetches.get(gpu.gpu_id)
                    if handle is None:
                        handle = self._h_prefetches[gpu.gpu_id] = \
                            self._m_prefetches.labels(node=self.node.name,
                                                      gpu=str(gpu.gpu_id))
                    handle.inc()
                if self.profiler is not None:
                    self.profiler.record_compute(ce, engine.now - started,
                                                 node=self.node.name,
                                                 lane=stream.lane)
                op.finish(seconds)

            if seconds > 0:
                op.hold_then_sleep(gpu.host_link, seconds, 0.0, fin)
            else:
                fin(op)

        meta = {"ce": ce.ce_id}
        if ce.session is not None:
            meta["session"] = ce.session
        done = stream.enqueue_call(begin, name=ce.display_name,
                                   category="prefetch", waits=list(waits),
                                   meta=meta)
        done.callbacks.append(
            lambda _ev: self.local_dag.mark_done(ce))
        return done

    def _complete(self, gpu_id: int, load: float,
                  ce: ComputationalElement) -> None:
        self._pending_load[gpu_id] -= load
        self._note_pending(gpu_id)
        # The completion hook *is* the doneness signal — record it so the
        # local DAG's prune never has to rescan retired-but-running CEs
        # (the scan that made wide fan-outs quadratic).
        self.local_dag.mark_done(ce)
        # Pruning on *every* completion makes completion O(DAG size);
        # throttle it like the controller's periodic prune.  Dependency
        # structure is unaffected: completed non-frontier CEs are inert.
        self._completions += 1
        if self._completions % self._prune_every == 0:
            self.local_dag.prune_completed()

    def abort_inflight(self, cause: object = None) -> int:
        """Kill every op still queued or running on this node's streams.

        Crash recovery: the node is gone, so its pending kernels and
        prefetches must never fire their completion events — the
        controller re-executes them elsewhere and forwards the results.
        Returns the number of ops aborted.
        """
        aborted = 0
        for gpu in self.node.gpus:
            for stream in gpu.streams:
                aborted += stream.abort_pending(cause)
        return aborted

    # -- placement heuristics -----------------------------------------------------

    def _select_gpu(self, ce: ComputationalElement,
                    parents: list[ComputationalElement]) -> Gpu:
        # Data locality first (GrCUDA's device-selection heuristic): the
        # GPU *planned* to hold the most parameter bytes wins — scheduling
        # is eager, so physical residency lags; the plan is what keeps a
        # chunk pinned to one device across CG iterations instead of
        # ping-ponging its gigabytes between the two.
        votes: dict[int, int] = {}
        for access in ce.accesses:
            gpu_id = self._planned_gpu.get(access.buffer.buffer_id)
            if gpu_id is not None:
                votes[gpu_id] = votes.get(gpu_id, 0) \
                    + access.buffer.nbytes
        gpu = None
        if votes:
            winner, weight = max(votes.items(), key=lambda kv: kv[1])
            # Locality only decides when it covers a meaningful share of
            # the CE's bytes — a shared broadcast vector must not drag
            # every chunk onto one device.
            if weight >= 0.5 * max(1, ce.param_bytes):
                gpu = next((g for g in self.node.gpus
                            if g.gpu_id == winner), None)
        if gpu is None and len(parents) == 1:
            # No data anywhere yet: inherit a lone parent's GPU.
            parent_stream = self._stream_of.get(parents[0].ce_id)
            if parent_stream is not None:
                gpu = parent_stream.gpu
        if gpu is None:
            gpu = min(self.node.gpus,
                      key=lambda g: (self._pending_load[g.gpu_id], g.index))
        for access in ce.accesses:
            self._planned_gpu[access.buffer.buffer_id] = gpu.gpu_id
        return gpu

    def _select_stream(self, gpu: Gpu, ce: ComputationalElement,
                       parents: list[ComputationalElement]) -> Stream:
        # Single parent on this GPU whose op is still the stream tail:
        # FIFO order subsumes the dependency, reuse the stream.
        if len(parents) == 1:
            parent_stream = self._stream_of.get(parents[0].ce_id)
            if (parent_stream is not None and parent_stream.gpu is gpu
                    and parent_stream.last_completion is
                    parents[0].done):
                return parent_stream
        # An idle stream, if any.
        for stream in gpu.streams:
            tail = stream.last_completion
            if tail is None or tail.processed:
                return stream
        # Grow the pool, then fall back to the shortest queue.
        if len(gpu.streams) < self.max_streams_per_gpu:
            return gpu.new_stream()
        return min(gpu.streams, key=lambda s: s.ops_enqueued)

    def _fresh_stream(self, gpu: Gpu) -> Stream:
        """A stream with no pending tail — new if necessary, even past
        ``max_streams_per_gpu`` (recovery correctness beats the pool cap)."""
        for stream in gpu.streams:
            tail = stream.last_completion
            if tail is None or tail.processed:
                return stream
        return gpu.new_stream()

    # -- replica management (used by the GrOUT coherence layer) --------------------

    def drop_replica(self, array) -> None:
        """Invalidate a local copy after a remote node took ownership."""
        uvm = self.node.uvm
        assert uvm is not None
        if uvm.is_registered(array.buffer_id):
            uvm.invalidate(array.buffer_id)
            uvm.unregister(array.buffer_id)

    def writeback_seconds(self, array) -> float:
        """Flush local dirty pages before shipping the array elsewhere."""
        uvm = self.node.uvm
        assert uvm is not None
        if not uvm.is_registered(array.buffer_id):
            return 0.0
        return uvm.writeback(array.buffer_id).seconds
