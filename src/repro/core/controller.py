"""The GrOUT Controller — Algorithm 1.

For every incoming CE the controller (1) inserts it into the **Global DAG**,
(2) applies the selected inter-node policy, and (3) issues the data
movements that make every parameter up-to-date on the chosen node:
controller→worker sends when the data only lives here, worker↔worker P2P
otherwise.  The CE is then forwarded to the worker, whose intra-node
scheduler (Algorithm 2) picks the GPU stream.

Scheduling decisions are timed with ``perf_counter`` — the per-CE overhead
Fig. 9 reports — and the decision itself costs nothing in simulated time
(the paper finds these microseconds "do not significantly impact the
overall execution time since they can be interleaved").
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.net.fabric import TransferError
from repro.obs import CeProfiler, MetricsRegistry, RunningAggregate
from repro.obs import install as install_metrics
from repro.sim import Event, Interrupt, Process, SimError
from repro.core.arrays import Directory, ManagedArray
from repro.core.ce import CeKind, ComputationalElement
from repro.core.dag import DependencyDag
from repro.core.intranode import IntraNodeScheduler
from repro.core.planner import TransferPlanner
from repro.core.policies import Policy, SchedulingContext

__all__ = ["Controller", "ControllerStats", "RecoveryReport",
           "RunningAggregate", "HOST_MEM_BANDWIDTH", "NODE_CRASH"]

#: Host memory streaming bandwidth charged for host-side CE bodies.
HOST_MEM_BANDWIDTH = 20e9

#: Interrupt-cause tag carried by crash-triggered interruptions.
NODE_CRASH = "node-crash"


class ControllerStats:
    """Compatibility view over the registry-backed controller metrics.

    Historically a plain dataclass of counters; the tallies now live in
    the cluster's :class:`~repro.obs.registry.MetricsRegistry` (names in
    ``docs/OBSERVABILITY.md``) and this shim keeps the old read surface
    — ``stats.ces_scheduled``, ``stats.decision_seconds.mean``, ... —
    working unchanged for tests, reports and downstream users.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        if registry is None:
            registry = install_metrics(MetricsRegistry())
        self.registry = registry
        self._ces = registry.family("grout_ces_scheduled_total")
        self._transfers = registry.family(
            "grout_transfers_issued_total").labels()
        self._p2p = registry.family("grout_p2p_transfers_total").labels()
        self._bytes = registry.family(
            "grout_bytes_requested_total").labels()
        self._crashes = registry.family(
            "grout_worker_crashes_total").labels()
        self._reexecuted = registry.family(
            "grout_ces_reexecuted_total").labels()
        self._rerouted = registry.family(
            "grout_transfers_rerouted_total").labels()
        self._rolled_back = registry.family(
            "grout_arrays_rolled_back_total").labels()
        #: Bounded histogram of per-CE decision wall-clock costs (Fig. 9)
        #: — API-compatible with the RunningAggregate it replaced.
        self.decision_seconds = registry.family(
            "grout_decision_seconds").labels()

    @property
    def ces_scheduled(self) -> int:
        """CEs admitted by Algorithm 1 (every kind)."""
        return int(self._ces.value_sum())

    @property
    def transfers_issued(self) -> int:
        """Inter-node replications issued by the data-movement phase."""
        return int(self._transfers.value)

    @property
    def p2p_transfers(self) -> int:
        """Replications sourced worker-to-worker."""
        return int(self._p2p.value)

    @property
    def bytes_requested(self) -> int:
        """Bytes the data-movement phase asked the fabric to move."""
        return int(self._bytes.value)

    @property
    def worker_crashes(self) -> int:
        """Worker crashes recovered from."""
        return int(self._crashes.value)

    @property
    def ces_reexecuted(self) -> int:
        """CEs re-run on survivors after crashes."""
        return int(self._reexecuted.value)

    @property
    def transfers_rerouted(self) -> int:
        """In-flight moves re-sourced after a crash or failure."""
        return int(self._rerouted.value)

    @property
    def arrays_rolled_back(self) -> int:
        """Sole-copy arrays rolled back to the controller."""
        return int(self._rolled_back.value)

    @property
    def mean_decision_seconds(self) -> float:
        """Average wall-clock cost of one scheduling decision (exact)."""
        return self.decision_seconds.mean

    def __repr__(self) -> str:
        return (f"<ControllerStats ces={self.ces_scheduled} "
                f"transfers={self.transfers_issued}>")


@dataclass(frozen=True, slots=True)
class RecoveryReport:
    """What one worker-crash recovery did."""

    node: str
    ces_reexecuted: int
    ops_aborted: int
    moves_cancelled: int
    moves_rerouted: int
    arrays_rolled_back: int
    replacement: str | None = None


class Controller:
    """Node-level scheduler and coherence authority of a GrOUT cluster."""

    def __init__(self, cluster: Cluster, policy: Policy, *,
                 max_streams_per_gpu: int = 4,
                 prune_every: int = 256,
                 collectives: bool = False,
                 chunk_bytes: int | None = None):
        self.cluster = cluster
        self.engine = cluster.engine
        self.policy = policy
        self.directory = Directory(home=cluster.controller.name)
        self.metrics: MetricsRegistry = install_metrics(
            getattr(cluster, "metrics", None) or MetricsRegistry())
        self.profiler: CeProfiler | None = getattr(
            cluster, "profiler", None)
        self.workers: dict[str, IntraNodeScheduler] = {
            w.name: IntraNodeScheduler(
                w, max_streams_per_gpu=max_streams_per_gpu,
                metrics=self.metrics, profiler=self.profiler)
            for w in cluster.workers
        }
        self.dag = DependencyDag()
        self.stats = ControllerStats(self.metrics)
        m = self.metrics
        self._m_ces = m.family("grout_ces_scheduled_total")
        self._m_transfers = m.family(
            "grout_transfers_issued_total").labels()
        self._m_p2p = m.family("grout_p2p_transfers_total").labels()
        self._m_bytes = m.family("grout_bytes_requested_total").labels()
        self._m_crashes = m.family("grout_worker_crashes_total").labels()
        self._m_reexecuted = m.family(
            "grout_ces_reexecuted_total").labels()
        self._m_rerouted = m.family(
            "grout_transfers_rerouted_total").labels()
        self._m_rolled_back = m.family(
            "grout_arrays_rolled_back_total").labels()
        #: Collective data movement (broadcast relays); a no-op unless
        #: ``collectives`` is on, so the default schedule is untouched.
        self.planner = TransferPlanner(self, enabled=collectives,
                                       chunk_bytes=chunk_bytes)
        self.context = SchedulingContext(
            workers=[w.name for w in cluster.workers],
            directory=self.directory,
            topology=cluster.topology,
            controller=cluster.controller.name,
        )
        self._prune_every = prune_every
        self._max_streams_per_gpu = max_streams_per_gpu
        self._pending: list[Event] = []
        self._scheduled = 0           # prune cadence, cheap local count

    def add_worker(self) -> str:
        """Attach a freshly provisioned worker (autoscaling, §V-F).

        Already-scheduled CEs keep their placement; the policies see the
        new node from the next decision on.
        """
        node = self.cluster.add_worker()
        self.workers[node.name] = IntraNodeScheduler(
            node, max_streams_per_gpu=self._max_streams_per_gpu,
            metrics=self.metrics, profiler=self.profiler)
        self.context.workers = [w.name for w in self.cluster.workers]
        return node.name

    # -- public entry point ------------------------------------------------------

    def schedule(self, ce: ComputationalElement) -> Event:
        """Run Algorithm 1 on one CE; returns (and attaches) its done event."""
        # Add CE to the Global DAG's frontier.
        started = time.perf_counter()
        ancestors = self.dag.add(ce)

        # Apply the node-level scheduling policy.
        if ce.kind is CeKind.KERNEL:
            node_name = self.policy.assign(ce, self.context)
        elif ce.kind is CeKind.PREFETCH:
            # User-directed placement (the hand-tuning primitive); falls
            # back to the policy when no node was named.
            node_name = ce.assigned_node or self.policy.assign(
                ce, self.context)
        else:
            node_name = self.cluster.controller.name
        decision_cost = time.perf_counter() - started
        self.stats.decision_seconds.append(decision_cost)
        if self.profiler is not None:
            self.profiler.record_sched(ce, decision_cost, node=node_name)
        ce.assigned_node = node_name

        waits: list[Event] = [
            a.done for a in ancestors
            if a.done is not None and not a.done.processed
        ]

        # Issue the necessary data movements.
        for array in ce.arrays:
            ev = self._ensure_on_node(array, node_name, for_ce=ce)
            if ev is not None:
                waits.append(ev)

        # Coherence transitions happen in program order, here and now.
        for array in ce.reads:
            self.directory.record_read(array, ce)
        for array in ce.writes:
            invalidated = self.directory.record_write(array, node_name, ce)
            for victim in invalidated:
                worker = self.workers.get(victim)
                if worker is not None:
                    worker.drop_replica(array)

        # Forward the CE.
        if ce.kind in (CeKind.KERNEL, CeKind.PREFETCH):
            latency = self.cluster.topology.latency(
                self.cluster.controller.name, node_name)
            if latency > 0:
                waits.append(self.engine.timeout(
                    latency, name=f"ctl->{node_name}"))
            done = self.workers[node_name].submit(ce, waits)
        else:
            done = self._run_host_ce(ce, waits)
        ce.done = done
        self.policy.notify_scheduled(ce)
        self._pending.append(done)
        self._m_ces.labels(kind=ce.kind.value).inc()
        self._scheduled += 1
        if self._scheduled % self._prune_every == 0:
            self.dag.prune_completed(
                lambda c: c.done is not None and c.done.processed)
            self._pending = [e for e in self._pending if not e.processed]
            self.directory.prune_readers()
        return done

    # -- Algorithm 1, data-movement phase -----------------------------------------

    def _ensure_on_node(self, array: ManagedArray, node_name: str,
                        reexec_of: ComputationalElement | None = None,
                        for_ce: ComputationalElement | None = None
                        ) -> Event | None:
        """Return the event a consumer on ``node_name`` must wait for.

        ``reexec_of`` marks a crash re-execution: the directory's
        ``last_writer`` may then be the re-executed CE itself (or a
        program-order-later casualty), and waiting on it would deadlock —
        the DAG parent waits already order the re-execution correctly.
        ``for_ce`` attributes the resulting transfer time to the
        consuming CE in the profiler.
        """
        directory = self.directory
        if directory.up_to_date_on(array, node_name):
            # Possibly still in flight from an earlier replication.
            return directory.replication_event(array, node_name)

        state = directory.state(array)
        last = state.last_writer
        producer = None
        if last is not None and (reexec_of is None
                                 or last.ce_id < reexec_of.ce_id):
            producer = last.done

        if reexec_of is None and self.planner.wants(array, producer):
            # Broadcast shape: coalesce same-window replications into one
            # pipelined relay chain (the driver re-records each
            # destination's real predecessor once the chain is fixed).
            src = self.cluster.controller.name
            done = self.planner.request(array, node_name, producer,
                                        for_ce=for_ce)
        else:
            if directory.only_on_controller(array):
                src = self.cluster.controller.name
            else:
                # The P2P source: the up-to-date holder with the best
                # link to the destination (prefer workers over the
                # controller).
                src = min(
                    (h for h in state.up_to_date if h != node_name),
                    key=lambda h: (h == self.cluster.controller.name,
                                   self.cluster.topology.transfer_seconds(
                                       h, node_name, array.nbytes)))
                if src != self.cluster.controller.name:
                    self._m_p2p.inc()
            done = self.engine.process(
                self._move(array, src, node_name, producer, for_ce=for_ce),
                name=f"move:{array.name}->{node_name}")
        directory.record_replication(
            array, node_name, done, src=src,
            producer_id=last.ce_id if producer is not None else None)
        self._m_transfers.inc()
        self._m_bytes.inc(array.nbytes)
        return done

    def _move(self, array: ManagedArray, src: str, dst: str,
              producer: Event | None,
              for_ce: ComputationalElement | None = None):
        """Process: wait for the producer, flush source GPUs, cross the wire.

        Failure-aware: an interrupt carrying a node-crash cause makes the
        move re-source from a surviving holder and start over, and a
        transfer that exhausted its fabric retries falls back to another
        source (ultimately the controller) before giving up.
        """
        rescues = 0
        measured_from: float | None = None
        while True:
            try:
                if producer is not None and not producer.processed:
                    yield producer
                if measured_from is None:
                    # Profile from after the producer wait: the wait is
                    # dependency stall, not data movement.
                    measured_from = self.engine.now
                source_worker = self.workers.get(src)
                if source_worker is not None:
                    wb = source_worker.writeback_seconds(array)
                    if wb > 0:
                        yield self.engine.timeout(wb)
                yield from self.cluster.fabric.transfer_process(
                    src, dst, array.nbytes, label=array.name)
                if self.profiler is not None and for_ce is not None:
                    self.profiler.record_transfer(
                        for_ce, self.engine.now - measured_from,
                        nbytes=array.nbytes, node=dst)
                return array.nbytes
            except Interrupt as intr:
                cause = intr.cause
                if not (isinstance(cause, tuple) and cause
                        and cause[0] == NODE_CRASH):
                    raise
                src = self._surviving_source(array, dst, exclude=cause[1])
                self._m_rerouted.inc()
            except TransferError:
                rescues += 1
                if rescues > 3 or src == self.cluster.controller.name:
                    raise
                src = self._surviving_source(array, dst, exclude=src)
                self._m_rerouted.inc()

    def _surviving_source(self, array: ManagedArray, dst: str,
                          exclude: str | None = None) -> str:
        """Best live holder to re-ship from; the controller is the
        guaranteed last resort (it regains validity if nobody else holds
        the array)."""
        home = self.cluster.controller.name
        state = self.directory.state(array)
        candidates = [
            h for h in state.up_to_date
            if h not in (dst, exclude) and (h == home or h in self.workers)
        ]
        if not candidates:
            state.up_to_date.add(home)
            return home
        return min(candidates, key=lambda h: (
            h == home,
            self.cluster.topology.transfer_seconds(h, dst, array.nbytes)))

    # -- failure recovery --------------------------------------------------------

    def handle_worker_crash(self, name: str, *,
                            request_replacement: bool = False
                            ) -> RecoveryReport:
        """Recover from a worker dying mid-run.

        Algorithm: (1) abort the node's in-flight stream ops so they can
        never complete; (2) repair the Directory — the dead node leaves
        every ``up_to_date`` set, sole-copy arrays roll back to the
        controller, replications into the node are cancelled and
        replications out of it re-sourced; (3) shrink the scheduling
        context so every policy stops considering the node; (4) re-run
        Algorithm 1 for the node's unfinished CEs on survivors, forwarding
        each re-execution's completion to the original ``done`` event so
        downstream waiters (and the user program) never notice.
        """
        scheduler = self.workers.pop(name, None)
        if scheduler is None:
            raise KeyError(f"no live worker named {name!r}")
        started = self.engine.now

        ops_aborted = scheduler.abort_inflight((NODE_CRASH, name))
        unfinished = sorted(
            (ce for ce in self.dag.nodes()
             if ce.assigned_node == name
             and ce.done is not None and not ce.done.triggered),
            key=lambda ce: ce.ce_id)

        repair = self.directory.drop_node(name)
        for ev in repair.cancelled:
            if isinstance(ev, Process):
                # Not a NODE_CRASH cause: the resilient mover re-sources on
                # those, but a move *into* the dead node must die outright.
                ev.cancel(("move-cancelled", name))
        for ev in repair.rerouted:
            if isinstance(ev, Process) and ev.is_alive:
                ev.interrupt((NODE_CRASH, name))

        self.context.workers = [w for w in self.context.workers
                                if w != name]
        self.cluster.remove_worker(name)
        replacement = self.add_worker() if request_replacement else None
        if not self.context.workers:
            raise SimError(
                f"worker {name!r} crashed and no workers survive; "
                "recovery needs at least one node (or a replacement)")

        for ce in unfinished:
            self._reexecute(ce)

        self._m_crashes.inc()
        self._m_reexecuted.inc(len(unfinished))
        self._m_rolled_back.inc(repair.rolled_back)
        tracer = self.cluster.tracer
        if tracer is not None:
            tracer.record(name, "fault", f"recover:{name}",
                          started, self.engine.now,
                          ces_reexecuted=len(unfinished),
                          rolled_back=repair.rolled_back)
        return RecoveryReport(
            node=name,
            ces_reexecuted=len(unfinished),
            ops_aborted=ops_aborted,
            moves_cancelled=len(repair.cancelled),
            moves_rerouted=len(repair.rerouted),
            arrays_rolled_back=repair.rolled_back,
            replacement=replacement,
        )

    def _reexecute(self, ce: ComputationalElement) -> None:
        """Re-run Algorithm 1 for one orphaned CE on a surviving node.

        The CE keeps its identity (DAG membership, ``done`` event): the
        re-execution's completion is forwarded to the original event, so
        ancestors-of-others wiring stays intact.  The executor cannot
        have run for an unfinished CE — kernels execute atomically at
        completion time — so re-execution is numerically safe.
        """
        old_done = ce.done
        node_name = self.policy.assign(ce, self.context)
        ce.assigned_node = node_name

        waits: list[Event] = [
            p.done for p in self.dag.parents(ce)
            if p.done is not None and not p.done.processed
        ]
        for array in ce.arrays:
            ev = self._ensure_on_node(array, node_name, reexec_of=ce,
                                      for_ce=ce)
            if ev is not None:
                # A pre-crash move into this node may itself be waiting
                # on *this* CE (its producer); waiting on it back would
                # cycle.  The DAG parent waits already order the data.
                state = self.directory.state(array)
                pid = state.inflight_producer.get(node_name)
                if pid is None or pid < ce.ce_id:
                    waits.append(ev)
        for array in ce.reads:
            self.directory.record_read(array, ce)
        for array in ce.writes:
            invalidated = self.directory.record_write(array, node_name, ce)
            for victim in invalidated:
                worker = self.workers.get(victim)
                if worker is not None:
                    worker.drop_replica(array)

        latency = self.cluster.topology.latency(
            self.cluster.controller.name, node_name)
        if latency > 0:
            waits.append(self.engine.timeout(
                latency, name=f"ctl->{node_name}"))
        new_done = self.workers[node_name].submit(ce, waits,
                                                  fresh_stream=True)
        if old_done is not None and not old_done.triggered:
            def forward(ev: Event, old: Event = old_done) -> None:
                if not old.triggered:
                    old.succeed(ev.value)
            new_done.callbacks.append(forward)
        # The re-assignment charged the survivor; credit it on the same
        # (forwarded) done event the original schedule used.
        self.policy.notify_scheduled(ce)

    # -- host-side CEs ---------------------------------------------------------------

    def _run_host_ce(self, ce: ComputationalElement,
                     waits: list[Event]) -> Event:
        engine = self.engine

        def body():
            if waits:
                yield engine.all_of(waits)
            nbytes = ce.param_bytes
            if nbytes:
                yield engine.timeout(nbytes / HOST_MEM_BANDWIDTH)
            result = ce.host_body() if ce.host_body is not None else None
            return result

        return engine.process(body(), name=ce.display_name)

    # -- draining ------------------------------------------------------------------

    def pending_events(self) -> list[Event]:
        """Completion events of CEs still in flight."""
        self._pending = [e for e in self._pending if not e.processed]
        return list(self._pending)
