"""The GrOUT Controller — Algorithm 1 as a staged scheduling pipeline.

For every incoming CE the controller threads one
:class:`~repro.core.pipeline.SchedulingState` through five explicit
stages (:mod:`repro.core.pipeline`):

1. **admission** — Global-DAG insert, frontier waits, and (with
   multi-program sessions) the fair-share gate;
2. **placement** — the selected inter-node policy picks a node;
3. **data movement** — the replications that make every parameter
   up-to-date there: controller→worker sends when the data only lives
   here, worker↔worker P2P otherwise;
4. **coherence** — directory read/write transitions, replica drops;
5. **dispatch** — the CE is forwarded to the worker, whose intra-node
   scheduler (Algorithm 2) picks the GPU stream.

Scheduling decisions are timed with ``perf_counter`` — the per-CE overhead
Fig. 9 reports — and the decision itself costs nothing in simulated time
(the paper finds these microseconds "do not significantly impact the
overall execution time since they can be interleaved").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cluster.cluster import Cluster
from repro.obs import CeProfiler, MetricsRegistry, RunningAggregate
from repro.obs import install as install_metrics
from repro.sim import Event, Process, SimError
from repro.core.arrays import Directory, ManagedArray
from repro.core.ce import ComputationalElement
from repro.core.dag import DependencyDag
from repro.core.intranode import IntraNodeScheduler, _ce_completed
from repro.core.pipeline import (AdmissionStage, CoherenceStage,
                                 DataMovementStage, DispatchStage,
                                 FairShareGate, FastMove,
                                 HOST_MEM_BANDWIDTH, NODE_CRASH,
                                 PlacementStage, SchedulingPipeline)
from repro.core.planner import TransferPlanner
from repro.core.policies import Policy, SchedulingContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.session import Session

__all__ = ["Controller", "ControllerStats", "RecoveryReport",
           "RunningAggregate", "HOST_MEM_BANDWIDTH", "NODE_CRASH"]


class ControllerStats:
    """The single owner of the controller's metric handles.

    Historically a plain dataclass of counters (and, for a while, a shim
    that duplicated every registry handle the controller also built for
    itself).  The tallies live in the cluster's
    :class:`~repro.obs.registry.MetricsRegistry` (names in
    ``docs/OBSERVABILITY.md``); this object is now the one place they
    are resolved — the pipeline stages increment through the ``count_*``
    / ``observe_decision`` methods, and the old read surface —
    ``stats.ces_scheduled``, ``stats.decision_seconds.mean``, ... —
    keeps working unchanged for tests, reports and downstream users.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        if registry is None:
            registry = install_metrics(MetricsRegistry())
        self.registry = registry
        self._ces = registry.family("grout_ces_scheduled_total")
        self._transfers = registry.family(
            "grout_transfers_issued_total").labels()
        self._p2p = registry.family("grout_p2p_transfers_total").labels()
        self._bytes = registry.family(
            "grout_bytes_requested_total").labels()
        self._crashes = registry.family(
            "grout_worker_crashes_total").labels()
        self._reexecuted = registry.family(
            "grout_ces_reexecuted_total").labels()
        self._rerouted = registry.family(
            "grout_transfers_rerouted_total").labels()
        self._rolled_back = registry.family(
            "grout_arrays_rolled_back_total").labels()
        #: Bounded histogram of per-CE decision wall-clock costs (Fig. 9)
        #: — API-compatible with the RunningAggregate it replaced.
        self.decision_seconds = registry.family(
            "grout_decision_seconds").labels()
        # Per-kind bound counters, cached on first use (``labels()`` per
        # admitted CE is measurable at million-CE scale).
        self._ces_by_kind: dict[str, object] = {}

    # -- write surface (the pipeline stages increment through these) -----------

    def observe_decision(self, seconds: float) -> None:
        """Record one scheduling decision's wall-clock cost."""
        self.decision_seconds.append(seconds)

    def count_ce(self, kind: str) -> None:
        """Count one admitted CE, by kind."""
        handle = self._ces_by_kind.get(kind)
        if handle is None:
            handle = self._ces_by_kind[kind] = self._ces.labels(kind=kind)
        handle.inc()

    def count_transfer(self, nbytes: int) -> None:
        """Count one issued replication and the bytes it requested."""
        self._transfers.inc()
        self._bytes.inc(nbytes)

    def count_p2p(self) -> None:
        """Count one replication sourced worker-to-worker."""
        self._p2p.inc()

    def count_crash(self) -> None:
        """Count one recovered worker crash."""
        self._crashes.inc()

    def count_reexecuted(self, n: int = 1) -> None:
        """Count CEs re-run on survivors after a crash."""
        self._reexecuted.inc(n)

    def count_rerouted(self) -> None:
        """Count one in-flight move re-sourced after a failure."""
        self._rerouted.inc()

    def count_rolled_back(self, n: int = 1) -> None:
        """Count sole-copy arrays rolled back to the controller."""
        self._rolled_back.inc(n)

    # -- read surface -----------------------------------------------------------

    @property
    def ces_scheduled(self) -> int:
        """CEs admitted by Algorithm 1 (every kind)."""
        return int(self._ces.value_sum())

    @property
    def transfers_issued(self) -> int:
        """Inter-node replications issued by the data-movement phase."""
        return int(self._transfers.value)

    @property
    def p2p_transfers(self) -> int:
        """Replications sourced worker-to-worker."""
        return int(self._p2p.value)

    @property
    def bytes_requested(self) -> int:
        """Bytes the data-movement phase asked the fabric to move."""
        return int(self._bytes.value)

    @property
    def worker_crashes(self) -> int:
        """Worker crashes recovered from."""
        return int(self._crashes.value)

    @property
    def ces_reexecuted(self) -> int:
        """CEs re-run on survivors after crashes."""
        return int(self._reexecuted.value)

    @property
    def transfers_rerouted(self) -> int:
        """In-flight moves re-sourced after a crash or failure."""
        return int(self._rerouted.value)

    @property
    def arrays_rolled_back(self) -> int:
        """Sole-copy arrays rolled back to the controller."""
        return int(self._rolled_back.value)

    @property
    def mean_decision_seconds(self) -> float:
        """Average wall-clock cost of one scheduling decision (exact)."""
        return self.decision_seconds.mean

    def __repr__(self) -> str:
        return (f"<ControllerStats ces={self.ces_scheduled} "
                f"transfers={self.transfers_issued}>")


@dataclass(frozen=True, slots=True)
class RecoveryReport:
    """What one worker-crash recovery did."""

    node: str
    ces_reexecuted: int
    ops_aborted: int
    moves_cancelled: int
    moves_rerouted: int
    arrays_rolled_back: int
    replacement: str | None = None


class Controller:
    """Node-level scheduler and coherence authority of a GrOUT cluster."""

    def __init__(self, cluster: Cluster, policy: Policy, *,
                 max_streams_per_gpu: int = 4,
                 prune_every: int = 256,
                 collectives: bool = False,
                 chunk_bytes: int | None = None,
                 fair_share_window: int = 32,
                 plan_cache: bool = False,
                 shards: int | None = None,
                 shard_window: float | None = None,
                 shard_max_outstanding: int | None = None):
        if plan_cache and (shards is not None or collectives
                           or chunk_bytes is not None):
            # Checked before anything is constructed (shard mode spawns
            # worker processes).
            raise SimError(
                "plan_cache requires the default movement path in one "
                "process (no collectives, no chunk_bytes, no shards): "
                "recorded plans replay whole-array point-to-point "
                "transfers against in-process worker state")
        self.cluster = cluster
        self.engine = cluster.engine
        self.policy = policy
        self.directory = Directory(home=cluster.controller.name)
        self.metrics: MetricsRegistry = install_metrics(
            getattr(cluster, "metrics", None) or MetricsRegistry())
        self.profiler: CeProfiler | None = getattr(
            cluster, "profiler", None)
        self._max_streams_per_gpu = max_streams_per_gpu
        #: Shard coordinator (conservative-window parallel simulation);
        #: ``None`` in the default single-process mode, which keeps the
        #: event schedule byte-identical to the golden trace.
        self.coordinator = None
        if shards is not None:
            if collectives:
                raise SimError(
                    "collectives are not supported in shard mode (relay "
                    "legs would need cross-process stream state)")
            from repro.core import shard as shard_mod
            kwargs = {}
            if shard_window is not None:
                kwargs["window"] = shard_window
            if shard_max_outstanding is not None:
                kwargs["max_outstanding"] = shard_max_outstanding
            self.coordinator = shard_mod.ShardCoordinator(
                self, shards, **kwargs)
            self.workers = self.coordinator.proxies()
        else:
            self.workers: dict[str, IntraNodeScheduler] = {
                w.name: IntraNodeScheduler(
                    w, max_streams_per_gpu=max_streams_per_gpu,
                    metrics=self.metrics, profiler=self.profiler)
                for w in cluster.workers
            }
        self.dag = DependencyDag()
        self.stats = ControllerStats(self.metrics)
        #: Collective data movement (broadcast relays); a no-op unless
        #: ``collectives`` is on, so the default schedule is untouched.
        self.planner = TransferPlanner(self, enabled=collectives,
                                       chunk_bytes=chunk_bytes)
        self.context = SchedulingContext(
            workers=[w.name for w in cluster.workers],
            directory=self.directory,
            topology=cluster.topology,
            controller=cluster.controller.name,
        )
        #: Cross-program fairness for multi-session runs; inert with a
        #: single (or no) session.
        self.fair_share_gate = FairShareGate(window=fair_share_window,
                                             metrics=self.metrics)
        #: Algorithm 1 as explicit, individually swappable stages.
        self.pipeline = SchedulingPipeline([
            AdmissionStage(self, self.fair_share_gate),
            PlacementStage(self),
            DataMovementStage(self),
            CoherenceStage(self),
            DispatchStage(self, self.fair_share_gate),
        ])
        #: Memoized scheduling decisions for repeated keyed programs
        #: (:mod:`repro.core.plancache`); ``None`` with the knob off, in
        #: which case every path below stays byte-identical to the
        #: golden trace.
        self.plan_cache = None
        if plan_cache:
            from repro.core.plancache import PlanCache
            self.plan_cache = PlanCache(self)
        self._prune_every = prune_every
        self._pending: list[Event] = []
        self._scheduled = 0           # prune cadence, cheap local count
        self._prune_seen_events = -1  # engine progress at the last prune
        self._closed = False

    def add_worker(self) -> str:
        """Attach a freshly provisioned worker (autoscaling, §V-F).

        Already-scheduled CEs keep their placement; the policies see the
        new node from the next decision on (and are notified through
        :meth:`~repro.core.policies.Policy.notify_topology_changed`).
        """
        if self.coordinator is not None:
            raise SimError("autoscaling is not supported in shard mode "
                           "(the worker partition is fixed at start)")
        node = self.cluster.add_worker()
        self.workers[node.name] = IntraNodeScheduler(
            node, max_streams_per_gpu=self._max_streams_per_gpu,
            metrics=self.metrics, profiler=self.profiler)
        self.context.workers = [w.name for w in self.cluster.workers]
        self.policy.notify_topology_changed(self.context,
                                            added=[node.name])
        if self.plan_cache is not None:
            self.plan_cache.invalidate_all("topology")
        return node.name

    # -- public entry point ------------------------------------------------------

    def schedule(self, ce: ComputationalElement, *,
                 session: "Session | None" = None) -> Event:
        """Run Algorithm 1 on one CE; returns (and attaches) its done event.

        ``session`` tags the CE with the submitting program's
        multi-program :class:`~repro.core.session.Session`; ``None``
        keeps the legacy single-program path (schedule-identical to the
        pre-session build).
        """
        if self._closed:
            raise SimError("controller is shut down; no further CEs")
        if session is not None and session._plan_replayer is not None:
            # Cache hit: replay the recorded decisions; a failed guard
            # deactivates the replayer and this (and every later) CE
            # takes the full pipeline below.
            state = session._plan_replayer.replay(ce)
            if state is None:
                state = self.pipeline.run(ce, session=session)
        else:
            recorder = session._plan_recorder \
                if session is not None else None
            if recorder is not None:
                recorder.begin(ce)
                state = self.pipeline.run(ce, session=session)
                if session._plan_recorder is recorder:
                    recorder.record(ce, state)
            else:
                state = self.pipeline.run(ce, session=session)
        self._scheduled += 1
        if self._scheduled % self._prune_every == 0:
            # A CE only becomes prunable when its done event is delivered,
            # which happens exclusively inside the engine's step loop — if
            # no event was processed since the last prune (the eager
            # build-up phase, where the engine never runs), every sweep
            # below is a guaranteed no-op over an ever-growing DAG.
            # Deferring GC is schedule-neutral: prune never alters edges
            # among live nodes.
            processed = self.engine.events_processed
            if processed != self._prune_seen_events:
                self._prune_seen_events = processed
                self.dag.prune_completed(_ce_completed)
                self._pending = [e for e in self._pending
                                 if not e.processed]
                self.directory.prune_readers()
        assert state.done is not None
        if self.coordinator is not None:
            # Backpressure: an eager build loop never runs the engine on
            # its own, so past the in-flight cap the coordinator pumps
            # exchange windows here — draining completions, letting the
            # periodic prune above actually collect, and bounding the
            # live CE graph at million-CE scale.
            self.coordinator.maybe_pump()
        return state.done

    # -- failure recovery --------------------------------------------------------

    def handle_worker_crash(self, name: str, *,
                            request_replacement: bool = False
                            ) -> RecoveryReport:
        """Recover from a worker dying mid-run.

        Algorithm: (1) abort the node's in-flight stream ops so they can
        never complete; (2) repair the Directory — the dead node leaves
        every ``up_to_date`` set, sole-copy arrays roll back to the
        controller, replications into the node are cancelled and
        replications out of it re-sourced; (3) shrink the scheduling
        context so every policy stops considering the node; (4) re-run
        Algorithm 1 for the node's unfinished CEs on survivors, forwarding
        each re-execution's completion to the original ``done`` event so
        downstream waiters (and the user program) never notice.
        """
        if self.coordinator is not None:
            raise SimError("crash recovery is not supported in shard "
                           "mode (fault injection is guarded off)")
        scheduler = self.workers.pop(name, None)
        if scheduler is None:
            raise KeyError(f"no live worker named {name!r}")
        started = self.engine.now
        # Direct crash calls (no armed fault plan) also flip the fabric
        # into resilient mode: recovery moves and later re-executions may
        # be interrupted by further crashes, so they need the
        # interruptible generator path from here on.
        self.cluster.fabric.resilient = True

        ops_aborted = scheduler.abort_inflight((NODE_CRASH, name))
        unfinished = sorted(
            (ce for ce in self.dag.nodes()
             if ce.assigned_node == name
             and ce.done is not None and not ce.done.triggered),
            key=lambda ce: ce.ce_id)

        repair = self.directory.drop_node(name)
        for ev in repair.cancelled:
            if isinstance(ev, (Process, FastMove)):
                # Not a NODE_CRASH cause: the resilient mover re-sources on
                # those, but a move *into* the dead node must die outright.
                ev.cancel(("move-cancelled", name))
        for ev in repair.rerouted:
            if isinstance(ev, FastMove):
                if ev.is_alive:
                    ev.interrupt_crash(name)
            elif isinstance(ev, Process) and ev.is_alive:
                ev.interrupt((NODE_CRASH, name))

        self.context.workers = [w for w in self.context.workers
                                if w != name]
        self.cluster.remove_worker(name)
        self.policy.notify_topology_changed(self.context, removed=[name])
        if self.plan_cache is not None:
            self.plan_cache.invalidate_all("crash")
        replacement = self.add_worker() if request_replacement else None
        if not self.context.workers:
            raise SimError(
                f"worker {name!r} crashed and no workers survive; "
                "recovery needs at least one node (or a replacement)")

        for ce in unfinished:
            self._reexecute(ce)

        self.stats.count_crash()
        self.stats.count_reexecuted(len(unfinished))
        self.stats.count_rolled_back(repair.rolled_back)
        tracer = self.cluster.tracer
        if tracer is not None:
            tracer.record(name, "fault", f"recover:{name}",
                          started, self.engine.now,
                          ces_reexecuted=len(unfinished),
                          rolled_back=repair.rolled_back)
        return RecoveryReport(
            node=name,
            ces_reexecuted=len(unfinished),
            ops_aborted=ops_aborted,
            moves_cancelled=len(repair.cancelled),
            moves_rerouted=len(repair.rerouted),
            arrays_rolled_back=repair.rolled_back,
            replacement=replacement,
        )

    def _reexecute(self, ce: ComputationalElement) -> None:
        """Re-run Algorithm 1 for one orphaned CE on a surviving node.

        The CE keeps its identity (DAG membership, ``done`` event): the
        re-execution's completion is forwarded to the original event, so
        ancestors-of-others wiring stays intact.  The executor cannot
        have run for an unfinished CE — kernels execute atomically at
        completion time — so re-execution is numerically safe.  Data
        movement goes through the same staged mover as first executions
        (:meth:`DataMovementStage.ensure_on_node` with ``reexec_of``).
        """
        old_done = ce.done
        node_name = self.policy.assign(ce, self.context)
        ce.assigned_node = node_name
        mover: DataMovementStage = self.pipeline.stage("data-movement")

        waits: list[Event] = [
            p.done for p in self.dag.parents(ce)
            if p.done is not None and not p.done.processed
        ]
        for array in ce.arrays:
            ev = mover.ensure_on_node(array, node_name, reexec_of=ce,
                                      for_ce=ce)
            if ev is not None:
                # A pre-crash move into this node may itself be waiting
                # on *this* CE (its producer); waiting on it back would
                # cycle.  The DAG parent waits already order the data.
                state = self.directory.state(array)
                pid = state.inflight_producer.get(node_name)
                if pid is None or pid < ce.ce_id:
                    waits.append(ev)
        for array in ce.reads:
            self.directory.record_read(array, ce)
        for array in ce.writes:
            invalidated = self.directory.record_write(array, node_name, ce)
            for victim in invalidated:
                worker = self.workers.get(victim)
                if worker is not None:
                    worker.drop_replica(array)

        latency = self.cluster.topology.latency(
            self.cluster.controller.name, node_name)
        if latency > 0:
            waits.append(self.engine.timeout(
                latency, name=f"ctl->{node_name}"))
        new_done = self.workers[node_name].submit(ce, waits,
                                                  fresh_stream=True)
        if old_done is not None and not old_done.triggered:
            def forward(ev: Event, old: Event = old_done) -> None:
                if not old.triggered:
                    old.succeed(ev.value)
            new_done.callbacks.append(forward)
        # The re-assignment charged the survivor; credit it on the same
        # (forwarded) done event the original schedule used.
        self.policy.notify_scheduled(ce)

    # -- compatibility delegates (the stages own the implementations) -------------

    def _ensure_on_node(self, array: ManagedArray, node_name: str,
                        reexec_of: ComputationalElement | None = None,
                        for_ce: ComputationalElement | None = None
                        ) -> Event | None:
        """Delegate to the data-movement stage (kept for the planner and
        older callers; new code should reach the stage directly)."""
        mover: DataMovementStage = self.pipeline.stage("data-movement")
        return mover.ensure_on_node(array, node_name,
                                    reexec_of=reexec_of, for_ce=for_ce)

    # -- draining ------------------------------------------------------------------

    def pending_events(self) -> list[Event]:
        """Completion events of CEs still in flight."""
        self._pending = [e for e in self._pending if not e.processed]
        return list(self._pending)

    def run_until(self, event: Event) -> None:
        """Advance simulation until ``event`` fires.

        The one entry point the runtime and sessions block through: in
        the default mode it is exactly ``engine.run(until=event)``; in
        shard mode it drives conservative exchange windows until the
        event resolves, so cross-process completions keep flowing while
        the controller waits.
        """
        if self.coordinator is not None:
            self.coordinator.run_until(event)
        else:
            self.engine.run(until=event)

    def run_for(self, horizon: float) -> None:
        """Advance simulation until simulated time reaches ``horizon``."""
        if self.coordinator is not None:
            self.coordinator.run_for(horizon)
        else:
            self.engine.run(until=horizon)

    def shutdown(self) -> None:
        """Release resources and refuse further scheduling; idempotent.

        Shuts the shard coordinator's worker processes down (when
        present) and clears the pending list and the Global DAG — the
        remaining object graphs that pin CE frames between back-to-back
        runtime constructions in one process.  Read surfaces (stats,
        directory, workers) stay intact for post-run reporting.
        """
        if self._closed:
            return
        self._closed = True
        if self.coordinator is not None:
            self.coordinator.shutdown()
        self._pending.clear()
        self.dag = DependencyDag()
