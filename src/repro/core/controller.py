"""The GrOUT Controller — Algorithm 1.

For every incoming CE the controller (1) inserts it into the **Global DAG**,
(2) applies the selected inter-node policy, and (3) issues the data
movements that make every parameter up-to-date on the chosen node:
controller→worker sends when the data only lives here, worker↔worker P2P
otherwise.  The CE is then forwarded to the worker, whose intra-node
scheduler (Algorithm 2) picks the GPU stream.

Scheduling decisions are timed with ``perf_counter`` — the per-CE overhead
Fig. 9 reports — and the decision itself costs nothing in simulated time
(the paper finds these microseconds "do not significantly impact the
overall execution time since they can be interleaved").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster
from repro.sim import Event
from repro.core.arrays import Directory, ManagedArray
from repro.core.ce import CeKind, ComputationalElement
from repro.core.dag import DependencyDag
from repro.core.intranode import IntraNodeScheduler
from repro.core.policies import Policy, SchedulingContext

#: Host memory streaming bandwidth charged for host-side CE bodies.
HOST_MEM_BANDWIDTH = 20e9


@dataclass(slots=True)
class ControllerStats:
    """Counters the evaluation section reports on."""

    ces_scheduled: int = 0
    transfers_issued: int = 0
    p2p_transfers: int = 0
    bytes_requested: int = 0
    decision_seconds: list[float] = field(default_factory=list)

    @property
    def mean_decision_seconds(self) -> float:
        """Average wall-clock cost of one scheduling decision."""
        if not self.decision_seconds:
            return 0.0
        return sum(self.decision_seconds) / len(self.decision_seconds)


class Controller:
    """Node-level scheduler and coherence authority of a GrOUT cluster."""

    def __init__(self, cluster: Cluster, policy: Policy, *,
                 max_streams_per_gpu: int = 4,
                 prune_every: int = 256):
        self.cluster = cluster
        self.engine = cluster.engine
        self.policy = policy
        self.directory = Directory(home=cluster.controller.name)
        self.workers: dict[str, IntraNodeScheduler] = {
            w.name: IntraNodeScheduler(
                w, max_streams_per_gpu=max_streams_per_gpu)
            for w in cluster.workers
        }
        self.dag = DependencyDag()
        self.stats = ControllerStats()
        self.context = SchedulingContext(
            workers=[w.name for w in cluster.workers],
            directory=self.directory,
            topology=cluster.topology,
            controller=cluster.controller.name,
        )
        self._prune_every = prune_every
        self._max_streams_per_gpu = max_streams_per_gpu
        self._pending: list[Event] = []

    def add_worker(self) -> str:
        """Attach a freshly provisioned worker (autoscaling, §V-F).

        Already-scheduled CEs keep their placement; the policies see the
        new node from the next decision on.
        """
        node = self.cluster.add_worker()
        self.workers[node.name] = IntraNodeScheduler(
            node, max_streams_per_gpu=self._max_streams_per_gpu)
        self.context.workers = [w.name for w in self.cluster.workers]
        return node.name

    # -- public entry point ------------------------------------------------------

    def schedule(self, ce: ComputationalElement) -> Event:
        """Run Algorithm 1 on one CE; returns (and attaches) its done event."""
        # Add CE to the Global DAG's frontier.
        started = time.perf_counter()
        ancestors = self.dag.add(ce)

        # Apply the node-level scheduling policy.
        if ce.kind is CeKind.KERNEL:
            node_name = self.policy.assign(ce, self.context)
        elif ce.kind is CeKind.PREFETCH:
            # User-directed placement (the hand-tuning primitive); falls
            # back to the policy when no node was named.
            node_name = ce.assigned_node or self.policy.assign(
                ce, self.context)
        else:
            node_name = self.cluster.controller.name
        self.stats.decision_seconds.append(time.perf_counter() - started)
        ce.assigned_node = node_name

        waits: list[Event] = [
            a.done for a in ancestors
            if a.done is not None and not a.done.processed
        ]

        # Issue the necessary data movements.
        for array in ce.arrays:
            ev = self._ensure_on_node(array, node_name)
            if ev is not None:
                waits.append(ev)

        # Coherence transitions happen in program order, here and now.
        for array in ce.reads:
            self.directory.record_read(array, ce)
        for array in ce.writes:
            invalidated = self.directory.record_write(array, node_name, ce)
            for victim in invalidated:
                worker = self.workers.get(victim)
                if worker is not None:
                    worker.drop_replica(array)

        # Forward the CE.
        if ce.kind in (CeKind.KERNEL, CeKind.PREFETCH):
            latency = self.cluster.topology.latency(
                self.cluster.controller.name, node_name)
            if latency > 0:
                waits.append(self.engine.timeout(
                    latency, name=f"ctl->{node_name}"))
            done = self.workers[node_name].submit(ce, waits)
        else:
            done = self._run_host_ce(ce, waits)
        ce.done = done
        self._pending.append(done)
        self.stats.ces_scheduled += 1
        if self.stats.ces_scheduled % self._prune_every == 0:
            self.dag.prune_completed(
                lambda c: c.done is not None and c.done.processed)
            self._pending = [e for e in self._pending if not e.processed]
        return done

    # -- Algorithm 1, data-movement phase -----------------------------------------

    def _ensure_on_node(self, array: ManagedArray,
                        node_name: str) -> Event | None:
        """Return the event a consumer on ``node_name`` must wait for."""
        directory = self.directory
        if directory.up_to_date_on(array, node_name):
            # Possibly still in flight from an earlier replication.
            return directory.replication_event(array, node_name)

        state = directory.state(array)
        if directory.only_on_controller(array):
            src = self.cluster.controller.name
        else:
            # A candidate P2P node: the up-to-date holder with the best
            # link to the destination (prefer workers over the controller).
            candidates = [h for h in state.up_to_date if h != node_name]
            workers_first = sorted(
                candidates,
                key=lambda h: (h == self.cluster.controller.name,
                               self.cluster.topology.transfer_seconds(
                                   h, node_name, array.nbytes)))
            src = workers_first[0]
            if src != self.cluster.controller.name:
                self.stats.p2p_transfers += 1

        producer = state.last_writer.done if state.last_writer else None
        done = self.engine.process(
            self._move(array, src, node_name, producer),
            name=f"move:{array.name}->{node_name}")
        directory.record_replication(array, node_name, done)
        self.stats.transfers_issued += 1
        self.stats.bytes_requested += array.nbytes
        return done

    def _move(self, array: ManagedArray, src: str, dst: str,
              producer: Event | None):
        """Process: wait for the producer, flush source GPUs, cross the wire."""
        if producer is not None and not producer.processed:
            yield producer
        source_worker = self.workers.get(src)
        if source_worker is not None:
            wb = source_worker.writeback_seconds(array)
            if wb > 0:
                yield self.engine.timeout(wb)
        yield from self.cluster.fabric.transfer_process(
            src, dst, array.nbytes, label=array.name)
        return array.nbytes

    # -- host-side CEs ---------------------------------------------------------------

    def _run_host_ce(self, ce: ComputationalElement,
                     waits: list[Event]) -> Event:
        engine = self.engine

        def body():
            if waits:
                yield engine.all_of(waits)
            nbytes = ce.param_bytes
            if nbytes:
                yield engine.timeout(nbytes / HOST_MEM_BANDWIDTH)
            result = ce.host_body() if ce.host_body is not None else None
            return result

        return engine.process(body(), name=ce.display_name)

    # -- draining ------------------------------------------------------------------

    def pending_events(self) -> list[Event]:
        """Completion events of CEs still in flight."""
        self._pending = [e for e in self._pending if not e.processed]
        return list(self._pending)
