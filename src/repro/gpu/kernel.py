"""Kernel descriptions and memory-access descriptors.

A simulated kernel carries two things:

* an optional **executor** — a Python callable that performs the real
  (NumPy) computation on the scaled-down array backings, keeping the
  reproduction numerically honest; and
* a **cost descriptor** — arithmetic intensity plus one
  :class:`ArrayAccess` per parameter, which is everything the UVM
  performance model needs to price the launch.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence, runtime_checkable


class Direction(enum.Flag):
    """Data-flow direction of one kernel parameter.

    ``reads``/``writes`` are plain per-member attributes (stamped below,
    not properties): they sit on the DAG frontier scan and the UVM pricing
    path, where ``enum.Flag.__and__`` machinery per call is measurable at
    million-CE scale.
    """

    IN = enum.auto()
    OUT = enum.auto()
    INOUT = IN | OUT

    reads: bool
    writes: bool


# __members__ (unlike plain iteration on a Flag) also covers the INOUT
# alias, so every member gets its cached flags.
for _member in Direction.__members__.values():
    _member.reads = bool(_member & Direction.IN)
    _member.writes = bool(_member & Direction.OUT)
del _member


class AccessPattern(enum.Enum):
    """How a kernel walks a parameter's pages.

    The pattern drives both which pages the UVM model marks touched and the
    fault-amplification factor under oversubscription (random access fetches
    a 64 KiB granule to use a few bytes, cf. the FALL pages of [7]).
    """

    SEQUENTIAL = "sequential"   # streaming sweep, page i before page i+1
    STRIDED = "strided"         # regular stride, still prefetch-friendly
    RANDOM = "random"           # data-dependent, prefetch-hostile


@runtime_checkable
class SizedBuffer(Protocol):
    """Minimal interface a kernel parameter must expose to the cost model."""

    @property
    def nbytes(self) -> int:
        """Modeled footprint in bytes."""
        ...                             # pragma: no cover

    @property
    def buffer_id(self) -> int:
        """Stable unique identifier."""
        ...                             # pragma: no cover


@dataclass(frozen=True, slots=True)
class ArrayAccess:
    """One parameter's access descriptor for a single kernel launch.

    Attributes
    ----------
    buffer:
        The managed array being accessed.
    direction:
        Read/write/both; writes mark pages dirty (eviction must write back).
    pattern:
        Page-visit order, see :class:`AccessPattern`.
    fraction:
        Portion of the array touched by this launch, in ``(0, 1]``.
    passes:
        Number of full sweeps over the touched region (reuse factor).
    """

    buffer: SizedBuffer
    direction: Direction = Direction.IN
    pattern: AccessPattern = AccessPattern.SEQUENTIAL
    fraction: float = 1.0
    passes: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")
        if self.passes <= 0:
            raise ValueError(f"passes must be positive, got {self.passes}")

    @property
    def touched_bytes(self) -> int:
        """Bytes this access touches (fraction of the buffer)."""
        return int(self.buffer.nbytes * self.fraction)


@dataclass(frozen=True, slots=True)
class LaunchConfig:
    """CUDA-style execution configuration."""

    grid: tuple[int, ...]
    block: tuple[int, ...]

    def __post_init__(self) -> None:
        for dims, label in ((self.grid, "grid"), (self.block, "block")):
            if not dims or len(dims) > 3 or any(d < 1 for d in dims):
                raise ValueError(f"invalid {label} dims {dims}")

    @property
    def total_threads(self) -> int:
        """grid x block thread count."""
        threads = 1
        for g in self.grid:
            threads *= g
        for b in self.block:
            threads *= b
        return threads


Executor = Callable[..., None]


@dataclass(slots=True)
class KernelSpec:
    """A compiled (simulated) GPU kernel.

    Attributes
    ----------
    name:
        Kernel symbol name.
    flops_per_byte:
        Arithmetic intensity over *touched* bytes; used when ``flops_fn``
        is not given.
    executor:
        Optional callable performing the real computation on the NumPy
        backings; called positionally with the launch arguments.
    access_fn:
        Maps the launch arguments to per-parameter :class:`ArrayAccess`
        descriptors.  Required for execution on the simulated device.
    source:
        Original kernel source string, when built via the polyglot
        ``buildkernel`` front-end.
    """

    name: str
    flops_per_byte: float = 1.0
    executor: Executor | None = None
    access_fn: Callable[[Sequence[object]], list[ArrayAccess]] | None = None
    flops_fn: Callable[[Sequence[object]], float] | None = None
    source: str | None = None

    def flop_estimate(self, args: Sequence[object],
                      accesses: Sequence[ArrayAccess]) -> float:
        """Total floating-point work of a launch with these arguments."""
        if self.flops_fn is not None:
            return float(self.flops_fn(args))
        touched = sum(a.touched_bytes * a.passes for a in accesses)
        return self.flops_per_byte * touched

    def accesses(self, args: Sequence[object]) -> list[ArrayAccess]:
        """Derive per-parameter access descriptors for these arguments."""
        if self.access_fn is None:
            raise ValueError(
                f"kernel {self.name!r} has no access_fn; cannot derive "
                "its memory-access descriptors")
        return self.access_fn(args)

    def __repr__(self) -> str:
        return f"<KernelSpec {self.name!r} ai={self.flops_per_byte:g}>"


@dataclass(frozen=True, slots=True)
class KernelLaunch:
    """A fully bound kernel invocation ready for pricing/execution."""

    kernel: KernelSpec
    config: LaunchConfig
    args: tuple[object, ...]
    accesses: tuple[ArrayAccess, ...] = field(default=())

    @property
    def touched_bytes(self) -> int:
        """Total bytes the launch touches across parameters."""
        return sum(a.touched_bytes for a in self.accesses)

    @property
    def flops(self) -> float:
        """Floating-point work of the launch."""
        return self.kernel.flop_estimate(self.args, self.accesses)
