"""The simulated GPU device: streams, copy engines, identity.

Memory residency is deliberately *not* held here — the UVM manager
(`repro.uvm`) owns the per-device page tables so that one coherent model
covers every GPU of a node.  The device exposes only the raw hardware:
execution streams and DMA copy engines (contention points).
"""

from __future__ import annotations

import itertools

from repro.sim import Engine, Resource, Tracer
from repro.gpu.specs import GpuSpec
from repro.gpu.stream import Stream

_gpu_ids = itertools.count()


class Gpu:
    """One GPU installed in a simulated node."""

    def __init__(self, engine: Engine, spec: GpuSpec, *,
                 node_name: str = "node?", index: int = 0,
                 tracer: Tracer | None = None):
        self.engine = engine
        self.spec = spec
        self.node_name = node_name
        self.index = index
        self.tracer = tracer
        self.gpu_id = next(_gpu_ids)
        self._streams: list[Stream] = []
        # DMA engines serialise bulk copies; kernels do not use them.
        self.copy_engine = Resource(engine, capacity=spec.copy_engines,
                                    name=f"{self.lane}/dma")
        # One PCIe link to the host: concurrent streams' fault/migration
        # phases share it, whatever the copy-engine count.
        self.host_link = Resource(engine, capacity=1,
                                  name=f"{self.lane}/pcie")

    @property
    def lane(self) -> str:
        """Trace-lane prefix, e.g. ``worker0/gpu1``."""
        return f"{self.node_name}/gpu{self.index}"

    @property
    def memory_bytes(self) -> int:
        """On-device memory capacity."""
        return self.spec.memory_bytes

    # -- streams ---------------------------------------------------------

    @property
    def streams(self) -> list[Stream]:
        """Streams created so far, in creation order."""
        return list(self._streams)

    def new_stream(self) -> Stream:
        """Create and register the next execution stream."""
        stream = Stream(self.engine, self, len(self._streams),
                        tracer=self.tracer)
        self._streams.append(stream)
        return stream

    def default_stream(self) -> Stream:
        """Stream 0, created on first use (CUDA's legacy default stream)."""
        if not self._streams:
            return self.new_stream()
        return self._streams[0]

    # -- simple cost helpers ----------------------------------------------

    def compute_time(self, flops: float) -> float:
        """Seconds of pure arithmetic for ``flops`` at peak throughput."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        return flops / self.spec.fp32_flops

    def hbm_time(self, nbytes: float) -> float:
        """Seconds to stream ``nbytes`` through device memory."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.spec.hbm_bandwidth

    def __repr__(self) -> str:
        return f"<Gpu {self.lane} {self.spec.name}>"
