"""Simulated GPU hardware: device specs, streams, kernels.

The layering contract: this package depends only on :mod:`repro.sim`.
UVM memory behaviour lives one level up in :mod:`repro.uvm`.
"""

from repro.gpu.kernel import (
    AccessPattern,
    ArrayAccess,
    Direction,
    KernelLaunch,
    KernelSpec,
    LaunchConfig,
    SizedBuffer,
)
from repro.gpu.device import Gpu
from repro.gpu.specs import (
    A100_40GB,
    GIB,
    INTEL_MAX_1100,
    KIB,
    MI100_32GB,
    MIB,
    TEST_GPU_1GB,
    UVM_BASE_PAGE,
    V100_16GB,
    GpuSpec,
)
from repro.gpu.stream import Stream

__all__ = [
    "A100_40GB",
    "AccessPattern",
    "ArrayAccess",
    "Direction",
    "GIB",
    "Gpu",
    "GpuSpec",
    "INTEL_MAX_1100",
    "KIB",
    "MI100_32GB",
    "KernelLaunch",
    "KernelSpec",
    "LaunchConfig",
    "MIB",
    "SizedBuffer",
    "Stream",
    "TEST_GPU_1GB",
    "UVM_BASE_PAGE",
    "V100_16GB",
]
