"""CUDA-stream semantics on the simulation engine.

A :class:`Stream` is a FIFO queue of device operations: each enqueued
operation starts only after (a) the previous operation on the same stream
completed and (b) all explicitly awaited events fired — exactly the CUDA
ordering rules GrCUDA's intra-node scheduler relies on (Algorithm 2 inserts
async wait-events on ancestor computations).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, Sequence

from repro.sim import Engine, Event, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.device import Gpu
    from repro.sim import Process

#: An operation body: a generator receiving the engine, run when the stream
#: reaches it.  Its (simulated) duration is whatever the generator consumes.
OpBody = Callable[[], Generator]


class Stream:
    """One in-order execution queue on a simulated GPU."""

    def __init__(self, engine: Engine, gpu: "Gpu", index: int,
                 tracer: Tracer | None = None):
        self.engine = engine
        self.gpu = gpu
        self.index = index
        self.tracer = tracer
        self._tail: Event | None = None   # completion of last enqueued op
        self._ops_enqueued = 0
        self._busy_until = 0.0            # bookkeeping for policies
        #: Live op processes, keyed by op index.  Each runner removes its
        #: own entry on exit, so membership is O(1) per op instead of a
        #: liveness rescan of the whole history on every enqueue.
        self._runners: dict[int, "Process"] = {}

    @property
    def lane(self) -> str:
        """Trace-lane name of this stream."""
        return f"{self.gpu.lane}/stream{self.index}"

    @property
    def ops_enqueued(self) -> int:
        """Operations enqueued over the stream's lifetime."""
        return self._ops_enqueued

    @property
    def last_completion(self) -> Event | None:
        """Completion event of the most recently enqueued operation."""
        return self._tail

    def enqueue(self, body: OpBody, *, name: str = "op",
                category: str = "kernel",
                waits: Sequence[Event] = (),
                meta: dict | None = None) -> Event:
        """Queue an operation; returns its completion event.

        ``waits`` are additional events (CUDA wait-events) that must fire
        before the operation may start, on top of stream FIFO order.
        ``meta`` attributes (e.g. the owning ``ce`` id) are attached to
        the recorded span, alongside the measured ``queued_seconds``
        between enqueue and start.
        """
        done = self.engine.event(name=f"{self.lane}:{name}:done")
        prereqs = [e for e in ([self._tail] if self._tail else []) + list(waits)
                   if e is not None]
        self._ops_enqueued += 1
        enqueued_at = self.engine.now

        def runner() -> Generator:
            if prereqs:
                yield self.engine.all_of(prereqs)
            start = self.engine.now
            result = yield from body()
            end = self.engine.now
            self._busy_until = max(self._busy_until, end)
            if self.tracer is not None:
                extra = dict(meta) if meta else {}
                extra["queued_seconds"] = start - enqueued_at
                self.tracer.record(self.lane, category, name, start, end,
                                   **extra)
            done.succeed(result)

        proc = self.engine.process(runner(), name=f"{self.lane}:{name}")
        key = self._ops_enqueued
        self._runners[key] = proc
        proc.callbacks.append(
            lambda _ev, _pop=self._runners.pop, _key=key: _pop(_key, None))
        self._tail = done
        return done

    def abort_pending(self, cause: object = None) -> int:
        """Kill every op still in flight on this stream (node crash).

        Cancelled ops never fire their completion events — the recovery
        layer re-executes them elsewhere and forwards the results.
        Returns the number of ops aborted.
        """
        aborted = 0
        for proc in list(self._runners.values()):
            if proc.cancel(cause):
                aborted += 1
        self._runners.clear()
        return aborted

    def synchronize(self) -> Event:
        """Event firing once everything currently enqueued has completed."""
        if self._tail is None or self._tail.processed:
            ev = self.engine.event(name=f"{self.lane}:sync")
            ev.succeed()
            return ev
        return self._tail

    def __repr__(self) -> str:
        return f"<Stream {self.lane} ops={self._ops_enqueued}>"
