"""CUDA-stream semantics on the simulation engine.

A :class:`Stream` is a FIFO queue of device operations: each enqueued
operation starts only after (a) the previous operation on the same stream
completed and (b) all explicitly awaited events fired — exactly the CUDA
ordering rules GrCUDA's intra-node scheduler relies on (Algorithm 2 inserts
async wait-events on ancestor computations).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, Sequence

from repro.sim import Engine, Event, Tracer
from repro.sim.events import EventState

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.device import Gpu
    from repro.sim import Process, Resource

_PROCESSED = EventState.PROCESSED

#: An operation body: a generator receiving the engine, run when the stream
#: reaches it.  Its (simulated) duration is whatever the generator consumes.
OpBody = Callable[[], Generator]


class FastOp:
    """A generator-free stream operation: an explicit callback chain.

    The common case — wait for prereqs, price, maybe hold the host link,
    sleep the kernel duration, complete — is straight-line, so it runs as
    engine ``schedule_call`` hops instead of a :class:`Process` driving a
    generator.  Queue-hop parity with the generator path is deliberate
    (one delivery per logical wait), which keeps schedules byte-identical;
    each hop is just far cheaper.

    Cancellation (node crash) marks the op dead: pending scheduled calls
    deliver as no-ops — exactly like a detached process's stale timeout —
    and a held or queued resource request is released.  The completion
    event then never fires, which is what crash re-execution relies on.
    """

    __slots__ = ("stream", "engine", "name", "category", "meta", "done",
                 "enqueued_at", "started_at", "_begin_fn", "_key", "_dead",
                 "_held", "_hold_seconds", "_sleep_seconds", "_next",
                 "_pending_joins")

    def __init__(self, stream: "Stream", begin_fn: Callable[["FastOp"], None],
                 name: str, category: str, meta: dict | None, key: int):
        engine = stream.engine
        self.stream = stream
        self.engine = engine
        self.name = name
        self.category = category
        self.meta = meta
        self.done = engine.event(name=f"{stream.lane}:{name}:done")
        self.enqueued_at = engine.now
        self.started_at = 0.0
        self._begin_fn = begin_fn
        self._key = key
        self._dead = False
        self._held = None
        self._hold_seconds = 0.0
        self._sleep_seconds = 0.0
        self._next: Callable[["FastOp"], None] | None = None
        self._pending_joins = 0

    # -- chain stages (engine-delivered) ------------------------------------

    def _start(self, prereqs: list[Event] | None) -> None:
        if self._dead:
            return
        if prereqs:
            pending = 0
            for ev in prereqs:
                ev._defused = True
                if ev._state is not _PROCESSED:
                    pending += 1
            if pending:
                self._pending_joins = pending
                on_prereq = self._on_prereq
                for ev in prereqs:
                    if ev._state is not _PROCESSED:
                        ev.callbacks.append(on_prereq)
                return
            # Every prereq already fired: one hop, matching an AllOf that
            # succeeds at construction.
            self.engine.schedule_call(0.0, self._begin)
            return
        self._begin(None)

    def _on_prereq(self, child: Event) -> None:
        if self._dead:
            return
        if not child._ok:
            self._dead = True
            self.stream._runners.pop(self._key, None)
            self.done.fail(child.value)  # type: ignore[arg-type]
            return
        self._pending_joins -= 1
        if self._pending_joins == 0:
            self.engine.schedule_call(0.0, self._begin)

    def _begin(self, _arg: object = None) -> None:
        if self._dead:
            return
        self.started_at = self.engine.now
        self._begin_fn(self)

    # -- continuation primitives (called from the op body) ------------------

    def hold_then_sleep(self, resource: "Resource", hold_seconds: float,
                        sleep_seconds: float,
                        then: Callable[["FastOp"], None]) -> None:
        """Hold ``resource`` for ``hold_seconds``, sleep ``sleep_seconds``,
        then continue — mirrors ``yield from resource.acquire(h)`` followed
        by ``yield timeout(s)`` hop for hop."""
        self._hold_seconds = hold_seconds
        self._sleep_seconds = sleep_seconds
        self._next = then
        req = resource.request()
        self._held = req
        req.callbacks.append(self._on_grant)

    def _on_grant(self, _ev: Event) -> None:
        if self._dead:
            return
        self.engine.schedule_call(self._hold_seconds, self._after_hold)

    def _after_hold(self, _arg: object) -> None:
        if self._dead:
            return  # cancel() already released the request
        req, self._held = self._held, None
        req.resource.release(req)
        if self._sleep_seconds > 0:
            self.engine.schedule_call(self._sleep_seconds, self._run_next)
        else:
            self._run_next(None)

    def sleep(self, seconds: float,
              then: Callable[["FastOp"], None]) -> None:
        """Continue after ``seconds``; zero continues synchronously, the
        same as the generator path skipping its ``yield timeout``."""
        self._next = then
        if seconds > 0:
            self.engine.schedule_call(seconds, self._run_next)
        else:
            self._run_next(None)

    def _run_next(self, _arg: object) -> None:
        if self._dead:
            return
        nxt, self._next = self._next, None
        nxt(self)

    def finish(self, result: object) -> None:
        """Complete the op: record the span and fire the done event."""
        if self._dead:
            return
        stream = self.stream
        end = self.engine.now
        if stream._busy_until < end:
            stream._busy_until = end
        if stream.tracer is not None:
            extra = dict(self.meta) if self.meta else {}
            extra["queued_seconds"] = self.started_at - self.enqueued_at
            stream.tracer.record(stream.lane, self.category, self.name,
                                 self.started_at, end, **extra)
        stream._runners.pop(self._key, None)
        self.done.succeed(result)

    # -- crash recovery ------------------------------------------------------

    def cancel(self, cause: object = None) -> bool:
        """Kill the op; its completion event never fires.  Returns whether
        it was still alive (mirrors :meth:`Process.cancel`)."""
        if self._dead or self.done.triggered:
            return False
        self._dead = True
        held, self._held = self._held, None
        if held is not None:
            held.resource.release(held)
        return True

    def __repr__(self) -> str:
        state = "dead" if self._dead else "live"
        return f"<FastOp {self.stream.lane}:{self.name} {state}>"


class Stream:
    """One in-order execution queue on a simulated GPU."""

    def __init__(self, engine: Engine, gpu: "Gpu", index: int,
                 tracer: Tracer | None = None):
        self.engine = engine
        self.gpu = gpu
        self.index = index
        self.tracer = tracer
        self._tail: Event | None = None   # completion of last enqueued op
        self._ops_enqueued = 0
        self._busy_until = 0.0            # bookkeeping for policies
        #: Live op processes, keyed by op index.  Each runner removes its
        #: own entry on exit, so membership is O(1) per op instead of a
        #: liveness rescan of the whole history on every enqueue.
        self._runners: dict[int, "Process"] = {}

    @property
    def lane(self) -> str:
        """Trace-lane name of this stream."""
        return f"{self.gpu.lane}/stream{self.index}"

    @property
    def ops_enqueued(self) -> int:
        """Operations enqueued over the stream's lifetime."""
        return self._ops_enqueued

    @property
    def last_completion(self) -> Event | None:
        """Completion event of the most recently enqueued operation."""
        return self._tail

    def enqueue(self, body: OpBody, *, name: str = "op",
                category: str = "kernel",
                waits: Sequence[Event] = (),
                meta: dict | None = None) -> Event:
        """Queue an operation; returns its completion event.

        ``waits`` are additional events (CUDA wait-events) that must fire
        before the operation may start, on top of stream FIFO order.
        ``meta`` attributes (e.g. the owning ``ce`` id) are attached to
        the recorded span, alongside the measured ``queued_seconds``
        between enqueue and start.
        """
        done = self.engine.event(name=f"{self.lane}:{name}:done")
        prereqs = [e for e in ([self._tail] if self._tail else []) + list(waits)
                   if e is not None]
        self._ops_enqueued += 1
        enqueued_at = self.engine.now

        def runner() -> Generator:
            if prereqs:
                yield self.engine.all_of(prereqs)
            start = self.engine.now
            result = yield from body()
            end = self.engine.now
            self._busy_until = max(self._busy_until, end)
            if self.tracer is not None:
                extra = dict(meta) if meta else {}
                extra["queued_seconds"] = start - enqueued_at
                self.tracer.record(self.lane, category, name, start, end,
                                   **extra)
            done.succeed(result)

        proc = self.engine.process(runner(), name=f"{self.lane}:{name}")
        key = self._ops_enqueued
        self._runners[key] = proc
        proc.callbacks.append(
            lambda _ev, _pop=self._runners.pop, _key=key: _pop(_key, None))
        self._tail = done
        return done

    def enqueue_call(self, begin: Callable[[FastOp], None], *,
                     name: str = "op", category: str = "kernel",
                     waits: Sequence[Event] = (),
                     meta: dict | None = None) -> Event:
        """Queue a generator-free operation; returns its completion event.

        The fast-path twin of :meth:`enqueue`: once FIFO order and
        ``waits`` allow, ``begin(op)`` runs and drives the rest of the op
        through :class:`FastOp`'s continuation primitives, ending in
        ``op.finish(result)``.  Queue-hop parity with the generator path
        keeps the event schedule byte-identical.
        """
        self._ops_enqueued += 1
        key = self._ops_enqueued
        op = FastOp(self, begin, name, category, meta, key)
        tail = self._tail
        prereqs = [e for e in ([tail] if tail is not None else [])
                   + list(waits) if e is not None]
        if prereqs:
            # Order-preserving identity dedup, matching Condition's.
            prereqs = list(dict.fromkeys(prereqs))
        self._runners[key] = op
        self._tail = op.done
        # One hop before the join is built, like a Process's start event.
        self.engine.schedule_call(0.0, op._start, prereqs)
        return op.done

    def abort_pending(self, cause: object = None) -> int:
        """Kill every op still in flight on this stream (node crash).

        Cancelled ops never fire their completion events — the recovery
        layer re-executes them elsewhere and forwards the results.
        Returns the number of ops aborted.
        """
        aborted = 0
        for proc in list(self._runners.values()):
            if proc.cancel(cause):
                aborted += 1
        self._runners.clear()
        return aborted

    def synchronize(self) -> Event:
        """Event firing once everything currently enqueued has completed."""
        if self._tail is None or self._tail.processed:
            ev = self.engine.event(name=f"{self.lane}:sync")
            ev.succeed()
            return ev
        return self._tail

    def __repr__(self) -> str:
        return f"<Stream {self.lane} ops={self._ops_enqueued}>"
