"""Hardware specifications for simulated GPUs.

Bandwidth figures are expressed in **bytes per second** and memory sizes in
**bytes** so that the rest of the code never has to guess units.  Presets
correspond to the devices named by the paper (NVIDIA Tesla V100 16 GB on the
OCI worker nodes) plus a few common alternatives used in tests/ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Base granule at which UVM migrates memory.  Real UVM uses 64 KiB blocks
#: coalesced up to 2 MiB by the prefetcher; this is the default base page.
UVM_BASE_PAGE = 64 * KIB


@dataclass(frozen=True, slots=True)
class GpuSpec:
    """Static description of one GPU device.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"V100-16GB"``.
    memory_bytes:
        On-device (HBM) capacity available to UVM.
    hbm_bandwidth:
        Device-memory bandwidth, bytes/s.
    pcie_bandwidth:
        Host link bandwidth, bytes/s (effective, not theoretical).
    nvlink_bandwidth:
        Peer GPU link bandwidth within a node, bytes/s (0 = no NVLink).
    fp32_flops:
        Peak single-precision throughput, FLOP/s.
    sm_count:
        Number of streaming multiprocessors (used for occupancy effects).
    copy_engines:
        Number of concurrent DMA engines (H2D/D2H overlap capability).
    fault_batch_latency:
        Fixed cost, in seconds, to service one batch of UVM page faults
        (driver round-trip + TLB shootdown), per [22]'s batching analysis.
    fault_batch_pages:
        Number of base pages the fault handler migrates per batch.
    kernel_launch_overhead:
        Fixed host-side cost of one kernel launch, seconds.
    page_size:
        UVM migration granule in bytes.
    """

    name: str
    memory_bytes: int
    hbm_bandwidth: float
    pcie_bandwidth: float
    nvlink_bandwidth: float
    fp32_flops: float
    sm_count: int = 80
    copy_engines: int = 2
    fault_batch_latency: float = 45e-6
    fault_batch_pages: int = 256
    kernel_launch_overhead: float = 6e-6
    page_size: int = UVM_BASE_PAGE

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if self.page_size <= 0 or self.memory_bytes % self.page_size:
            raise ValueError(
                f"page_size {self.page_size} must divide memory_bytes")
        for attr in ("hbm_bandwidth", "pcie_bandwidth", "fp32_flops"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")
        if self.nvlink_bandwidth < 0:
            raise ValueError("nvlink_bandwidth must be >= 0")

    @property
    def total_pages(self) -> int:
        """Device capacity in UVM base pages."""
        return self.memory_bytes // self.page_size

    def with_page_size(self, page_size: int) -> "GpuSpec":
        """Copy of this spec with a different UVM granule (for coarse runs)."""
        return replace(self, page_size=page_size)

    def pages_for(self, nbytes: int) -> int:
        """Number of base pages covering ``nbytes``."""
        return -(-int(nbytes) // self.page_size)


#: The paper's worker GPU: NVIDIA Tesla V100 SXM2 16 GB.
V100_16GB = GpuSpec(
    name="V100-16GB",
    memory_bytes=16 * GIB,
    hbm_bandwidth=900e9,
    pcie_bandwidth=12e9,       # effective PCIe 3.0 x16
    nvlink_bandwidth=50e9,     # one NVLink2 brick pair, effective
    fp32_flops=14e12,
    sm_count=80,
)

#: A100 40 GB — used only in ablation sweeps.
A100_40GB = GpuSpec(
    name="A100-40GB",
    memory_bytes=40 * GIB,
    hbm_bandwidth=1555e9,
    pcie_bandwidth=25e9,       # PCIe 4.0 x16 effective
    nvlink_bandwidth=100e9,
    fp32_flops=19.5e12,
    sm_count=108,
)

#: AMD Instinct MI100 — the paper's conclusion notes the methodology
#: "can be easily extended" to other vendors' unified-memory stacks;
#: the model is vendor-agnostic, only the constants change.
MI100_32GB = GpuSpec(
    name="MI100-32GB",
    memory_bytes=32 * GIB,
    hbm_bandwidth=1230e9,
    pcie_bandwidth=25e9,       # PCIe 4.0 x16 effective
    nvlink_bandwidth=75e9,     # Infinity Fabric bridge, effective
    fp32_flops=23.1e12,
    sm_count=120,              # compute units
)

#: Intel Data Center GPU Max 1100 (SYCL USM stack).
INTEL_MAX_1100 = GpuSpec(
    name="IntelMax-48GB",
    memory_bytes=48 * GIB,
    hbm_bandwidth=1229e9,
    pcie_bandwidth=25e9,
    nvlink_bandwidth=0.0,      # single-card SKU, no Xe Link
    fp32_flops=22.2e12,
    sm_count=56,
)

#: Small synthetic device for fast unit tests (1 GiB, modest speeds).
TEST_GPU_1GB = GpuSpec(
    name="TestGPU-1GB",
    memory_bytes=1 * GIB,
    hbm_bandwidth=100e9,
    pcie_bandwidth=10e9,
    nvlink_bandwidth=20e9,
    fp32_flops=1e12,
    sm_count=8,
)
