"""Pluggable paging backends: who drives page migration, at what cost.

The paper models NVIDIA's stock UVM driver — a **CPU-driven
page-migration engine** (PME): a GPU page fault suspends the faulting
warps, the batch travels to the host driver, the CPU fault handler
resolves residency, programs the DMA engines and shoots down TLBs.
Every constant of :mod:`repro.uvm.calibration` (the 45 µs batch
round-trip, the density tree-prefetcher, the per-pattern degradation
curves) describes *that* design.

GPUVM (PAPERS.md) demonstrates the alternative: **GPU-driven paging**,
where fault handling runs on the GPU itself against pinned host memory.
The CPU round-trip disappears (orders of magnitude lower batch fixed
cost), but so do the driver-side heuristics that make streaming cheap —
there is no tree prefetcher and no evict-ahead pipeline, so sequential
sweeps lose their long oversubscription runway while random access —
the pattern the CPU-driven handler punishes hardest — degrades far more
gracefully.

A :class:`PagingBackend` captures that whole design point as three
transforms applied at :class:`~repro.uvm.manager.UvmSpace` construction
time: the degradation/overlap constants
(:class:`~repro.uvm.calibration.UvmModelParams`), the fault-engine
constants on the :class:`~repro.gpu.specs.GpuSpec` (batch latency and
batch size — the spec seen by the :class:`MigrationEngine`
/ :class:`KernelPricer`, *not* the device's memory geometry), and the
:class:`~repro.uvm.prefetch.PrefetchConfig`.  The default
:class:`CpuPmeBackend` returns every input unchanged — object-identical,
so default schedules stay byte-identical to the pre-backend code (the
golden traces pin this).

Backends are registered by name (``PAGING_BACKENDS``) and always
*addressable* by name, because shard workers rebuild their UVM spaces in
separate processes and the wire protocol only ships plain strings.
"""

from __future__ import annotations

import abc
import dataclasses

from repro.gpu.kernel import AccessPattern
from repro.gpu.specs import GpuSpec
from repro.uvm.calibration import PatternParams, UvmModelParams
from repro.uvm.prefetch import PrefetchConfig


class PagingBackend(abc.ABC):
    """One paging design point: fault cost + prefetch/eviction behaviour.

    Subclasses transform the three ingredient bundles a
    :class:`~repro.uvm.manager.UvmSpace` hands to its per-device engines.
    Returning an argument *unchanged* (the same object) is the identity
    contract the default backend relies on for byte-identical schedules.
    """

    #: Registry key; also the ``backend`` label on ``grout_uvm_*`` metrics.
    name: str = "backend"

    @abc.abstractmethod
    def model_params(self, base: UvmModelParams) -> UvmModelParams:
        """The degradation-curve/overlap constants under this backend."""

    @abc.abstractmethod
    def engine_spec(self, spec: GpuSpec) -> GpuSpec:
        """The spec the migration engine prices faults against.

        Only the fault-engine constants (``fault_batch_latency``,
        ``fault_batch_pages``) may differ from the device's real spec —
        memory geometry belongs to the hardware, not the paging design.
        """

    @abc.abstractmethod
    def prefetch_config(self, base: PrefetchConfig) -> PrefetchConfig:
        """The driver prefetcher configuration under this backend."""

    def eviction_order(self, base: str) -> str:
        """Eviction policy name; defaults to whatever the caller chose."""
        return base

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class CpuPmeBackend(PagingBackend):
    """The paper's CPU-driven page-migration engine — the default.

    Pure identity: every hook returns its argument object unchanged, so
    a ``UvmSpace`` built with this backend is indistinguishable — down
    to object identity of its params — from one built before backends
    existed.  The golden schedule traces enforce that equivalence.
    """

    name = "cpu-pme"

    def model_params(self, base: UvmModelParams) -> UvmModelParams:
        """The paper's calibrated constants, returned untouched."""
        return base

    def engine_spec(self, spec: GpuSpec) -> GpuSpec:
        """The device's own fault-engine constants, returned untouched."""
        return spec

    def prefetch_config(self, base: PrefetchConfig) -> PrefetchConfig:
        """The caller's prefetcher configuration, returned untouched."""
        return base


#: GPU-driven fault handling: no CPU round-trip, no TLB-shootdown IPI.
#: GPUVM reports per-fault costs orders of magnitude below the CPU
#: handler's; one batch costs roughly a host-memory access plus the
#: on-GPU handler's bookkeeping.
_GPUVM_BATCH_LATENCY = 1.5e-6
#: GPU-driven handlers resolve faults at warp granularity — small
#: batches, many of them, each cheap.
_GPUVM_BATCH_PAGES = 32


def _gpuvm_patterns() -> dict[AccessPattern, PatternParams]:
    return {
        # No evict-ahead pipeline: streaming loses its long runway and
        # starts degrading as soon as the device oversubscribes, though
        # far less violently than the PME's post-knee collapse (the
        # cheap fault path keeps the link fed).
        AccessPattern.SEQUENTIAL: PatternParams(
            knee=1.1, beta=6.0, gamma=1.3, batch_penalty=1.0,
            prefetchable=False),
        # Strides no longer enjoy the tree prefetcher either; same
        # gentle post-knee slope as streaming.
        AccessPattern.STRIDED: PatternParams(
            knee=1.1, beta=7.0, gamma=1.3, batch_penalty=1.0,
            prefetchable=False),
        # The headline result: random access stops collapsing.  Fault
        # handling is cheap enough that data-dependent access degrades
        # by link occupancy, not handler saturation — no FALL cliff.
        AccessPattern.RANDOM: PatternParams(
            knee=1.05, beta=3.0, gamma=0.7, batch_penalty=1.0,
            prefetchable=False),
    }


class GpuvmBackend(PagingBackend):
    """A GPUVM-style GPU-driven paging backend (PAPERS.md).

    Fault batches are serviced on the GPU against pinned host memory:
    the fixed batch cost drops ~30× and the random-access
    ``batch_penalty`` disappears, but the driver-side tree prefetcher
    and evict-ahead pipeline do not exist, so the sequential/strided
    degradation knees move from ~2× OSF down to ~1.1×.  Migration can
    still overlap compute (the handler is asynchronous per warp), but
    with no prefetch pipeline the overlap fraction is smaller.
    """

    name = "gpuvm"

    def model_params(self, base: UvmModelParams) -> UvmModelParams:
        """GPU-driven degradation curves layered over the base overlap."""
        return dataclasses.replace(
            base,
            # The on-GPU fault path wastes less of the raw link than the
            # CPU handler's staging/batching does...
            fault_bw_efficiency=min(1.0, base.fault_bw_efficiency + 0.10),
            # ...but without a prefetch pipeline less of the migration
            # hides under compute, fitting or thrashing alike.
            migration_overlap=base.migration_overlap * 0.6,
            thrash_overlap=base.thrash_overlap,
            patterns=_gpuvm_patterns(),
        )

    def engine_spec(self, spec: GpuSpec) -> GpuSpec:
        """The real device with gpuvm's warp-granular fault constants."""
        return dataclasses.replace(
            spec,
            fault_batch_latency=_GPUVM_BATCH_LATENCY,
            fault_batch_pages=_GPUVM_BATCH_PAGES,
        )

    def prefetch_config(self, base: PrefetchConfig) -> PrefetchConfig:
        """No driver tree-prefetcher exists in a GPU-driven design."""
        return dataclasses.replace(base, enabled=False)


#: Every selectable backend, keyed by its CLI/registry name.
PAGING_BACKENDS: dict[str, type[PagingBackend]] = {
    CpuPmeBackend.name: CpuPmeBackend,
    GpuvmBackend.name: GpuvmBackend,
}

#: Name of the backend used when none is requested.
DEFAULT_BACKEND = CpuPmeBackend.name


def make_paging_backend(
        backend: str | PagingBackend | None) -> PagingBackend:
    """Resolve a backend argument (name, instance or None) to an instance."""
    if backend is None:
        return CpuPmeBackend()
    if isinstance(backend, PagingBackend):
        return backend
    try:
        cls = PAGING_BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown paging backend {backend!r}; "
            f"choose from {sorted(PAGING_BACKENDS)}") from None
    return cls()
