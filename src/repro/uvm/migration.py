"""The page-migration engine: prices and applies residency changes.

Every byte that crosses the host↔device link goes through here, in units of
base pages, batched the way the driver's fault handler batches them.  The
engine mutates the :class:`~repro.uvm.pagetable.DevicePageTable` and returns
the seconds the operation costs on the link.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.kernel import AccessPattern
from repro.gpu.specs import GpuSpec
from repro.uvm.calibration import UvmModelParams
from repro.uvm.pagetable import DevicePageTable
from repro.uvm.prefetch import PrefetchConfig, expand_faults


@dataclass(frozen=True, slots=True)
class MigrationStats:
    """Accounting of one migration operation."""

    migrated_pages: int = 0       # H2D pages brought in
    prefetched_pages: int = 0     # subset of migrated added by the prefetcher
    evicted_pages: int = 0        # pages pushed out to make room
    writeback_pages: int = 0      # dirty evictions needing D2H copies
    batches: int = 0
    seconds: float = 0.0

    def __add__(self, other: "MigrationStats") -> "MigrationStats":
        return MigrationStats(
            self.migrated_pages + other.migrated_pages,
            self.prefetched_pages + other.prefetched_pages,
            self.evicted_pages + other.evicted_pages,
            self.writeback_pages + other.writeback_pages,
            self.batches + other.batches,
            self.seconds + other.seconds,
        )


class MigrationEngine:
    """Prices residency changes for one device's page table."""

    def __init__(self, table: DevicePageTable, spec: GpuSpec,
                 params: UvmModelParams,
                 prefetch: PrefetchConfig | None = None,
                 eviction_order: str = "lru",
                 rng: np.random.Generator | None = None):
        self.table = table
        self.spec = spec
        self.params = params
        self.prefetch = prefetch or PrefetchConfig()
        self.eviction_order = eviction_order
        self.rng = rng or np.random.default_rng(0)

    # -- helpers -------------------------------------------------------------

    def link_bandwidth(self, pattern: AccessPattern, osf: float) -> float:
        """Effective fault-path bandwidth under pressure ``osf``, bytes/s."""
        p = self.params.pattern(pattern)
        return (self.spec.pcie_bandwidth * self.params.fault_bw_efficiency
                / p.degradation(osf))

    def batch_count(self, pages: int, pattern: AccessPattern) -> int:
        """Fault batches needed for ``pages`` under this pattern."""
        if pages <= 0:
            return 0
        p = self.params.pattern(pattern)
        return max(1, int(np.ceil(
            pages * p.batch_penalty / self.spec.fault_batch_pages)))

    def transfer_seconds(self, in_pages: int, wb_pages: int,
                         pattern: AccessPattern, osf: float) -> float:
        """Seconds to move ``in_pages`` H2D plus ``wb_pages`` write-backs."""
        bw = self.link_bandwidth(pattern, osf)
        nbytes = (in_pages + wb_pages * self.params.writeback_factor) \
            * self.table.page_size
        batches = self.batch_count(in_pages, pattern)
        return batches * self.spec.fault_batch_latency + nbytes / bw

    # -- operations ----------------------------------------------------------

    def migrate_in(self, buffer_id: int, pages: np.ndarray, *,
                   write: bool, pattern: AccessPattern,
                   osf: float) -> MigrationStats:
        """Make ``pages`` of a buffer resident; returns cost + accounting.

        Pages already resident only get their LRU clock refreshed (free).
        If the request alone exceeds device capacity the caller should be in
        the thrashing path instead; here we admit as much of the tail as
        fits, which approximates the end state of a streaming sweep.
        """
        clock = self.table.tick()
        state = self.table.buffer(buffer_id)
        self.table.touch(buffer_id, pages, write=write, clock=clock)
        faults = pages[~state.resident[pages]]
        if len(faults) == 0:
            return MigrationStats()

        expanded = faults
        if self.params.pattern(pattern).prefetchable:
            expanded = expand_faults(faults, state, pattern, self.prefetch)
        prefetched = len(expanded) - len(faults)

        if len(expanded) > self.table.capacity_pages:
            # Streaming a buffer bigger than the device: keep the sweep tail.
            expanded = expanded[-self.table.capacity_pages:]

        evicted = self.table.ensure_free(
            len(expanded), order=self.eviction_order, rng=self.rng,
            protect=buffer_id)
        self.table.admit(buffer_id, expanded, write=write, clock=clock)
        # Demand faults pay the fault-path (batched handler round-trips,
        # reduced link efficiency); prefetched pages ride bulk DMA at the
        # raw link rate — that asymmetry is the prefetcher's whole value.
        fault_pages = len(expanded) - prefetched
        seconds = self.transfer_seconds(
            fault_pages, evicted.dirty_pages, pattern, osf)
        if prefetched:
            degradation = self.params.pattern(pattern).degradation(osf)
            bulk_bw = self.spec.pcie_bandwidth / degradation
            seconds += prefetched * self.table.page_size / bulk_bw
        return MigrationStats(
            migrated_pages=len(expanded),
            prefetched_pages=prefetched,
            evicted_pages=evicted.evicted_pages,
            writeback_pages=evicted.dirty_pages,
            batches=self.batch_count(fault_pages, pattern),
            seconds=seconds,
        )

    def writeback(self, buffer_id: int, osf: float = 1.0) -> MigrationStats:
        """Flush a buffer's dirty pages D2H (host copy becomes current)."""
        if not self.table.is_registered(buffer_id):
            return MigrationStats()
        dirty = self.table.clean(buffer_id)
        if dirty == 0:
            return MigrationStats()
        seconds = self.transfer_seconds(
            0, dirty, AccessPattern.SEQUENTIAL, osf)
        return MigrationStats(writeback_pages=dirty, seconds=seconds)

    def invalidate(self, buffer_id: int) -> int:
        """Drop all resident pages of a buffer without write-back."""
        if not self.table.is_registered(buffer_id):
            return 0
        return self.table.drop(buffer_id)
