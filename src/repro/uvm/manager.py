"""The node-level UVM space: one coherent view over a node's GPUs.

``UvmSpace`` is what a simulated node's executor talks to: it owns one page
table + migration engine + kernel pricer per GPU, tracks which managed
buffers exist, and defines the *pressure* (device-level oversubscription
factor) that drives the calibrated degradation curves.

Pressure of a device = bytes of all buffers ever touched on it (and still
alive there) ÷ device capacity — the closest observable analogue of the
paper's "allocated vs. available memory" factor at per-GPU granularity.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.gpu.device import Gpu
from repro.gpu.kernel import AccessPattern, KernelLaunch, SizedBuffer
from repro.uvm.access import pages_for_bytes, touched_page_count
from repro.uvm.advise import Advise, AdviseRegistry
from repro.uvm.backends import PagingBackend, make_paging_backend
from repro.uvm.calibration import PAPER_CALIBRATION, UvmModelParams
from repro.uvm.migration import MigrationEngine
from repro.uvm.pagetable import DevicePageTable, UvmError
from repro.uvm.perfmodel import KernelCost, KernelPricer
from repro.uvm.prefetch import PrefetchConfig


@dataclass(frozen=True, slots=True)
class HostAccessCost:
    """Pricing of a host-side read or write of a managed buffer."""

    seconds: float
    writeback_bytes: int
    invalidated_bytes: int


@dataclass(slots=True)
class UvmStats:
    """Cumulative UVM traffic of one node (every GPU combined)."""

    kernel_launches: int = 0
    cold_bytes: int = 0
    refault_bytes: int = 0
    writeback_bytes: int = 0
    peer_bytes: int = 0
    prefetch_bytes: int = 0
    host_writeback_bytes: int = 0
    invalidated_bytes: int = 0
    thrashing_launches: int = 0

    @property
    def link_bytes(self) -> int:
        """Everything that crossed the host link (H2D + D2H)."""
        return (self.cold_bytes + self.refault_bytes
                + self.writeback_bytes + self.prefetch_bytes
                + self.host_writeback_bytes)


class _DeviceUvm:
    """Per-GPU bundle of page table, migration engine and pricer."""

    def __init__(self, gpu: Gpu, params: UvmModelParams,
                 prefetch: PrefetchConfig, eviction_order: str,
                 rng: np.random.Generator,
                 backend: PagingBackend | None = None):
        spec = gpu.spec
        self.gpu = gpu
        # Memory geometry is the hardware's; the page table never changes
        # with the paging design.  Fault pricing does: the engine and the
        # pricer see the backend-adapted spec (fault-batch constants).
        self.table = DevicePageTable(spec.total_pages, spec.page_size)
        engine_spec = spec if backend is None else backend.engine_spec(spec)
        self.engine = MigrationEngine(
            self.table, engine_spec, params, prefetch=prefetch,
            eviction_order=eviction_order, rng=rng)
        self.pricer = KernelPricer(self.engine, engine_spec, params)
        self.touched_buffers: dict[int, int] = {}   # buffer_id -> nbytes
        self.touched_total = 0                      # running sum of values
        self._memory_bytes = spec.memory_bytes

    @property
    def pressure(self) -> float:
        return self.touched_total / self._memory_bytes

    def touch(self, buffer_id: int, nbytes: int) -> None:
        """Record a buffer's footprint on this device (idempotent — a
        buffer's size is fixed while registered)."""
        if buffer_id not in self.touched_buffers:
            self.touched_buffers[buffer_id] = nbytes
            self.touched_total += nbytes

    def forget(self, buffer_id: int) -> None:
        nbytes = self.touched_buffers.pop(buffer_id, None)
        if nbytes is not None:
            self.touched_total -= nbytes
        if self.table.is_registered(buffer_id):
            self.table.unregister(buffer_id)


class UvmSpace:
    """Unified memory space of one node (all its GPUs + host backing)."""

    def __init__(self, gpus: list[Gpu], *,
                 params: UvmModelParams = PAPER_CALIBRATION,
                 prefetch: PrefetchConfig | None = None,
                 eviction_order: str = "lru",
                 seed: int = 0,
                 backend: PagingBackend | str | None = None):
        if not gpus:
            raise ValueError("UvmSpace needs at least one GPU")
        # The backend transforms every tunable before any engine exists.
        # The default (cpu-pme) returns each argument object unchanged,
        # so default construction is bit-for-bit the pre-backend path.
        self.backend = make_paging_backend(backend)
        self.params = self.backend.model_params(params)
        self.prefetch_config = self.backend.prefetch_config(
            prefetch or PrefetchConfig())
        self.eviction_order = self.backend.eviction_order(eviction_order)
        self.advises = AdviseRegistry()
        self.stats = UvmStats()
        rng = np.random.default_rng(seed)
        self._devices = {gpu.gpu_id: _DeviceUvm(
            gpu, self.params, self.prefetch_config, self.eviction_order,
            rng, backend=self.backend)
            for gpu in gpus}
        self._buffers: dict[int, int] = {}   # buffer_id -> nbytes
        # Incremental totals: register/unregister/advise adjust these so
        # the OSF — consulted on every kernel launch — is O(1) instead of
        # a sweep over every live buffer.  Advise mutations all flow
        # through :meth:`advise`, which keeps the pinned total honest.
        self._capacity = sum(g.spec.memory_bytes for g in gpus)
        self._managed_total = 0
        self._pinned_total = 0

    # -- buffer registry -----------------------------------------------------

    def register(self, buffer: SizedBuffer) -> None:
        """Add a buffer to the managed space (idempotent)."""
        existing = self._buffers.get(buffer.buffer_id)
        if existing is not None:
            if existing != buffer.nbytes:
                raise UvmError(
                    f"buffer {buffer.buffer_id} re-registered with a "
                    "different size")
            return
        self._buffers[buffer.buffer_id] = buffer.nbytes
        self._managed_total += buffer.nbytes
        if self.advises.for_buffer(buffer.buffer_id).preferred_host:
            self._pinned_total += buffer.nbytes

    def unregister(self, buffer_id: int) -> None:
        """Remove a buffer from the space and every device."""
        nbytes = self._buffers.pop(buffer_id, None)
        if nbytes is not None:
            self._managed_total -= nbytes
            if self.advises.for_buffer(buffer_id).preferred_host:
                self._pinned_total -= nbytes
        for dev in self._devices.values():
            dev.forget(buffer_id)
        self.advises.forget(buffer_id)

    def is_registered(self, buffer_id: int) -> bool:
        """Whether a buffer belongs to this space."""
        return buffer_id in self._buffers

    @property
    def managed_bytes(self) -> int:
        """Total modeled bytes of every registered buffer."""
        return self._managed_total

    @property
    def capacity_bytes(self) -> int:
        """Sum of the node's GPU memory capacities."""
        return self._capacity

    @property
    def oversubscription(self) -> float:
        """The paper's node-level OSF: managed bytes / total GPU memory.

        Host-pinned buffers never compete for device memory, so they do
        not contribute pressure.
        """
        return (self._managed_total - self._pinned_total) / self._capacity

    def advise(self, buffer_id: int, advise: Advise,
               device: int | None = None) -> None:
        """Apply a ``cudaMemAdvise`` equivalent.

        Advising before first use is the normal CUDA pattern, so this does
        not require the buffer to be registered yet.
        """
        nbytes = self._buffers.get(buffer_id)
        if nbytes is None:
            self.advises.advise(buffer_id, advise, device)
            return
        advise_set = self.advises.for_buffer(buffer_id)
        was_pinned = advise_set.preferred_host
        advise_set.apply(advise, device)
        if advise_set.preferred_host != was_pinned:
            self._pinned_total += (nbytes if advise_set.preferred_host
                                   else -nbytes)

    def _require(self, buffer_id: int) -> int:
        try:
            return self._buffers[buffer_id]
        except KeyError:
            raise UvmError(
                f"buffer {buffer_id} is not registered in this UVM space"
            ) from None

    def _device(self, gpu: Gpu) -> _DeviceUvm:
        try:
            return self._devices[gpu.gpu_id]
        except KeyError:
            raise UvmError(f"{gpu!r} does not belong to this UVM space") \
                from None

    def device_pressure(self, gpu: Gpu) -> float:
        """Per-GPU footprint-based oversubscription estimate."""
        return self._device(gpu).pressure

    def resident_bytes(self, buffer_id: int, gpu: Gpu | None = None) -> int:
        """Resident bytes of a buffer on one GPU or node-wide."""
        devices = ([self._device(gpu)] if gpu is not None
                   else list(self._devices.values()))
        total = 0
        for dev in devices:
            if dev.table.is_registered(buffer_id):
                total += dev.table.resident_bytes(buffer_id)
        return total

    # -- kernel pricing --------------------------------------------------------

    def price_kernel(self, gpu: Gpu, launch: KernelLaunch) -> KernelCost:
        """Price one launch on ``gpu``, mutating residency state.

        The degradation operating point is the *node-level* OSF (managed
        bytes ÷ total GPU memory) — the paper's "allocated vs. available"
        factor: the whole allocation competes for the node's device memory
        regardless of which GPU a particular kernel lands on.
        """
        dev = self._device(gpu)
        page_size = dev.table.page_size
        peer_seconds = 0.0
        peer_bytes = 0
        pinned: set[int] = set()
        for access in launch.accesses:
            buffer = access.buffer
            nbytes = self._require(buffer.buffer_id)
            advise_set = self.advises.for_buffer(buffer.buffer_id)
            if advise_set.preferred_host:
                # Zero-copy access: never migrated, no device footprint.
                pinned.add(buffer.buffer_id)
                continue
            if not dev.table.is_registered(buffer.buffer_id):
                dev.table.register(
                    buffer.buffer_id, pages_for_bytes(nbytes, page_size),
                    read_mostly=advise_set.read_mostly)
            dev.touch(buffer.buffer_id, nbytes)
            seconds, moved = self._peer_migrate(dev, buffer.buffer_id)
            peer_seconds += seconds
            peer_bytes += moved
        cost = dev.pricer.price(launch, self.oversubscription,
                                pinned_host=frozenset(pinned))
        if peer_seconds > 0:
            cost = dataclasses.replace(
                cost, duration=cost.duration + peer_seconds,
                peer_seconds=peer_seconds, peer_bytes=peer_bytes)
        stats = self.stats
        stats.kernel_launches += 1
        stats.cold_bytes += cost.cold_bytes
        stats.refault_bytes += cost.refault_bytes
        stats.writeback_bytes += cost.writeback_bytes
        stats.peer_bytes += cost.peer_bytes
        if cost.thrashing:
            stats.thrashing_launches += 1
        return cost

    def _peer_migrate(self, target: _DeviceUvm,
                      buffer_id: int) -> tuple[float, int]:
        """Pull a buffer's pages from a peer GPU over NVLink.

        UVM migrates pages between devices of one node over NVLink when
        available — far cheaper than re-faulting them from the host.
        Read-mostly buffers are *duplicated* (the peer keeps its copy);
        everything else moves.  Returns (seconds, bytes moved); (0, 0)
        when there is no NVLink or no better-stocked peer.
        """
        nvlink = target.gpu.spec.nvlink_bandwidth
        if nvlink <= 0 or len(self._devices) < 2:
            return 0.0, 0
        table = target.table
        target_pages = (table.resident_bytes(buffer_id) // table.page_size
                        if table.is_registered(buffer_id) else 0)
        best: _DeviceUvm | None = None
        best_pages = target_pages
        for dev in self._devices.values():
            if dev is target or not dev.table.is_registered(buffer_id):
                continue
            pages = dev.table.buffer(buffer_id).resident_count
            if pages > best_pages:
                best, best_pages = dev, pages
        if best is None:
            return 0.0, 0

        src_state = best.table.buffer(buffer_id)
        pages = np.flatnonzero(src_state.resident)
        if table.is_registered(buffer_id):
            pages = pages[~table.buffer(buffer_id).resident[pages]]
        if len(pages) == 0:
            return 0.0, 0
        if len(pages) > table.capacity_pages:
            pages = pages[-table.capacity_pages:]

        read_mostly = self.advises.for_buffer(buffer_id).read_mostly
        dirty = bool(src_state.dirty[pages].any())
        evicted = table.ensure_free(
            len(pages), order=self.eviction_order)
        table.admit(buffer_id, pages, write=dirty and not read_mostly)
        if not read_mostly:
            best.table.drop(buffer_id)
        moved = len(pages) * table.page_size
        seconds = moved / nvlink
        if evicted.dirty_pages:
            # Displaced dirty pages still go home over PCIe.
            seconds += target.engine.transfer_seconds(
                0, evicted.dirty_pages, AccessPattern.SEQUENTIAL,
                self.oversubscription)
        return seconds, moved

    # -- explicit prefetch (the hand-tuning alternative, §I) ---------------------

    def prefetch(self, gpu: Gpu, buffer: SizedBuffer) -> float:
        """``cudaMemPrefetchAsync`` equivalent: bulk-migrate a buffer to a
        device ahead of use.

        Prefetch is the efficient path — no fault batching round-trips, the
        link runs at its raw rate — which is exactly why the hand-tuning
        school of §I reaches for it.  Returns the seconds the bulk copy
        takes (to be charged on the owning stream).
        """
        dev = self._device(gpu)
        table = dev.table
        nbytes = self._require(buffer.buffer_id)
        if not table.is_registered(buffer.buffer_id):
            read_mostly = self.advises.for_buffer(
                buffer.buffer_id).read_mostly
            table.register(
                buffer.buffer_id,
                pages_for_bytes(nbytes, table.page_size),
                read_mostly=read_mostly)
        dev.touch(buffer.buffer_id, nbytes)

        state = table.buffer(buffer.buffer_id)
        pages = np.flatnonzero(~state.resident)
        if len(pages) == 0:
            return 0.0
        if len(pages) > table.capacity_pages:
            pages = pages[-table.capacity_pages:]
        evicted = table.ensure_free(len(pages), order=self.eviction_order,
                                    protect=buffer.buffer_id)
        table.admit(buffer.buffer_id, pages, write=False)
        moved = len(pages) * table.page_size
        self.stats.prefetch_bytes += moved
        wb = evicted.dirty_pages * table.page_size \
            * self.params.writeback_factor
        return (moved + wb) / dev.gpu.spec.pcie_bandwidth

    # -- host access & coherence ------------------------------------------------

    def host_access(self, buffer_id: int, *, write: bool) -> HostAccessCost:
        """Price the host touching a buffer (read needs device write-back,
        write additionally invalidates device replicas)."""
        self._require(buffer_id)
        seconds = 0.0
        wb_bytes = invalidated = 0
        for dev in self._devices.values():
            if not dev.table.is_registered(buffer_id):
                continue
            stats = dev.engine.writeback(buffer_id, osf=dev.pressure)
            seconds += stats.seconds
            wb_bytes += stats.writeback_pages * dev.table.page_size
            if write:
                invalidated += dev.engine.invalidate(buffer_id) \
                    * dev.table.page_size
        self.stats.host_writeback_bytes += wb_bytes
        self.stats.invalidated_bytes += invalidated
        return HostAccessCost(seconds, wb_bytes, invalidated)

    # -- kernel-cost replay (plan cache) -----------------------------------------

    def replay_kernel(self, gpu: Gpu, launch: KernelLaunch,
                      record: "KernelCostRecord",
                      buffer_ids: list[int]) -> KernelCost | None:
        """Apply a recorded launch transition instead of pricing it.

        The plan cache's cost-replay fast path: when a hot tenant
        resubmits a program, every launch re-derives the same page-set
        math, fault batching and degradation arithmetic over fresh
        buffers.  :func:`capture_kernel_cost` recorded the launch's full
        effect — per-device residency transitions, clock movement and
        the final :class:`KernelCost` — as all-or-nothing page states;
        this method re-validates that the live space is in the recorded
        pre-state (O(1) counts per buffer × device, no page-set
        construction) and, when it is, applies the recorded post-state
        with slice-wide page-table writes and returns the recorded cost.

        Returns ``None`` — with *nothing mutated* — on any mismatch;
        the caller then falls back to :meth:`price_kernel`, which
        reproduces the correct behaviour from live state.
        ``buffer_ids`` maps the record's session-local buffer indices to
        this session's live buffer ids.
        """
        devices = sorted(self._devices)
        if (tuple(devices) != record.device_ids
                or gpu.gpu_id != record.gpu_id
                or self.oversubscription != record.pre_osf):
            return None
        tables = [self._devices[d].table for d in devices]
        if any(t.page_size != record.page_size for t in tables):
            return None
        admit_need = [0] * len(devices)
        resolved: list[int] = []
        for b in record.buffers:
            if b.index >= len(buffer_ids):
                return None
            bid = buffer_ids[b.index]
            resolved.append(bid)
            if self._buffers.get(bid) != b.nbytes:
                return None
            advise_set = self.advises.for_buffer(bid)
            if advise_set.preferred_host or advise_set.read_mostly:
                return None
            for d, table in enumerate(tables):
                reg, res, dirty, _ac = b.pre[d]
                if table.is_registered(bid) != bool(reg):
                    return None
                if reg:
                    state = table.buffer(bid)
                    if (state.n_pages != b.n_pages
                            or state.resident_count != res
                            or state.dirty_count != dirty):
                        return None
                admit_need[d] += max(0, b.post[d][1] - res)
        for d, table in enumerate(tables):
            if admit_need[d] > table.free_pages:
                return None

        # -- every guard passed; apply the recorded transition ---------------
        target = devices.index(gpu.gpu_id)
        dev = self._devices[gpu.gpu_id]
        base = [t.clock for t in tables]
        for d, table in enumerate(tables):
            if record.clock_delta[d]:
                table.advance_clock(record.clock_delta[d])
        for b, bid in zip(record.buffers, resolved):
            dev.touch(bid, b.nbytes)
            for d, table in enumerate(tables):
                reg, res, dirty, ac = b.pre[d]
                reg_post, res_post, dirty_post, ac_post = b.post[d]
                if not reg_post:
                    continue
                if not table.is_registered(bid):
                    table.register(bid, b.n_pages)
                touches = ac_post - ac
                if (res_post == res and dirty_post == dirty
                        and touches == 0):
                    continue
                stamp = b.stamp[d]
                table.fill_uniform(
                    bid,
                    resident=res_post == b.n_pages,
                    dirty=(None if dirty_post == dirty
                           else dirty_post == b.n_pages),
                    clock=base[d] + stamp if stamp >= 0 else None,
                    touches=touches)
            dev.pricer._ordinals.setdefault(bid,
                                            len(dev.pricer._ordinals))
        dev.pricer._seed += 1
        cost = record.cost
        stats = self.stats
        stats.kernel_launches += 1
        stats.cold_bytes += cost.cold_bytes
        stats.peer_bytes += cost.peer_bytes
        return cost

    def writeback(self, buffer_id: int) -> HostAccessCost:
        """Flush dirty pages of a buffer so the host copy is current."""
        return self.host_access(buffer_id, write=False)

    def invalidate(self, buffer_id: int) -> int:
        """Drop every device replica (remote node took ownership)."""
        self._require(buffer_id)
        dropped = 0
        for dev in self._devices.values():
            dropped += dev.engine.invalidate(buffer_id) * dev.table.page_size
        return dropped


# -- kernel-cost recording (plan cache) ---------------------------------------

@dataclass(frozen=True, slots=True)
class BufferTransition:
    """One buffer's recorded page-state transition across a launch.

    Per device (ordered like the record's ``device_ids``): ``pre`` and
    ``post`` are ``(registered, resident_pages, dirty_pages,
    access_count)`` with page counts restricted to all-or-nothing (0 or
    ``n_pages``) and a *uniform* per-page access count — the invariant
    that makes count equality equivalent to exact state equality.
    ``stamp`` is the final ``last_access`` value as an offset from the
    device's pre-launch clock (−1: the launch never stamped it).
    """

    index: int              # session-local buffer index (plan-cache namespace)
    nbytes: int
    n_pages: int
    pre: tuple[tuple[int, int, int, int], ...]
    post: tuple[tuple[int, int, int, int], ...]
    stamp: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class KernelCostRecord:
    """A launch's full recorded effect: transitions + clock + cost."""

    gpu_id: int
    device_ids: tuple[int, ...]
    page_size: int
    pre_osf: float
    clock_delta: tuple[int, ...]
    buffers: tuple[BufferTransition, ...]
    cost: KernelCost


def _uniform(values: np.ndarray) -> int | None:
    """The single value of a uniform array, else ``None``."""
    lo = int(values.min())
    return lo if lo == int(values.max()) else None


def _device_state(table: DevicePageTable, buffer_id: int,
                  n_pages: int) -> tuple[int, int, int, int] | None:
    """All-or-nothing snapshot of one buffer on one device.

    ``None`` when the state is not representable by counts: partial
    residency/dirtiness or a non-uniform access count.
    """
    if not table.is_registered(buffer_id):
        return (0, 0, 0, 0)
    state = table.buffer(buffer_id)
    if state.n_pages != n_pages:
        return None
    res = state.resident_count
    dirty = state.dirty_count
    if res not in (0, n_pages) or dirty not in (0, n_pages):
        return None
    ac = _uniform(state.access_count)
    if ac is None:
        return None
    return (1, res, dirty, ac)


def capture_kernel_cost(space: UvmSpace, gpu: Gpu, launch: KernelLaunch,
                        index_of: dict[int, int]
                        ) -> tuple[KernelCostRecord | None, KernelCost]:
    """Price a launch live and, when possible, record its transition.

    Wraps :meth:`UvmSpace.price_kernel` — the returned cost and every
    side effect are exactly the live path's.  A
    :class:`KernelCostRecord` is additionally returned when the
    launch's effect is replayable from counts alone: full-coverage
    accesses, default advises, all-or-nothing pre/post residency on
    every device, no evictions, write-backs, refaults or thrashing.
    ``index_of`` maps live buffer ids to session-local indices (the
    plan cache's cross-session buffer namespace).
    """
    record = _pre_fingerprint(space, gpu, launch, index_of)
    cost = space.price_kernel(gpu, launch)
    if record is None:
        return None, cost
    return _close_record(space, gpu, record, cost), cost


def _pre_fingerprint(space: UvmSpace, gpu: Gpu, launch: KernelLaunch,
                     index_of: dict[int, int]) -> dict | None:
    devices = sorted(space._devices)
    tables = [space._devices[d].table for d in devices]
    page_size = tables[0].page_size
    if any(t.page_size != page_size for t in tables):
        return None
    order: list[int] = []
    buffers: dict[int, dict] = {}
    for access in launch.accesses:
        bid = access.buffer.buffer_id
        index = index_of.get(bid)
        if index is None:
            return None
        advise_set = space.advises.for_buffer(bid)
        if advise_set.preferred_host or advise_set.read_mostly:
            return None
        nbytes = access.buffer.nbytes
        n_pages = pages_for_bytes(nbytes, page_size)
        if touched_page_count(access, page_size) < n_pages:
            return None           # partial coverage: page sets matter
        if bid in buffers:
            continue
        pre = []
        for table in tables:
            state = _device_state(table, bid, n_pages)
            if state is None:
                return None
            pre.append(state)
        order.append(bid)
        buffers[bid] = {"index": index, "nbytes": nbytes,
                        "n_pages": n_pages, "pre": tuple(pre)}
    if not order:
        return None
    return {
        "devices": devices,
        "tables": tables,
        "page_size": page_size,
        "order": order,
        "buffers": buffers,
        "osf": space.oversubscription,
        "clock": [t.clock for t in tables],
        "resident": [t.resident_pages for t in tables],
    }


def _close_record(space: UvmSpace, gpu: Gpu, pre: dict,
                  cost: KernelCost) -> KernelCostRecord | None:
    if cost.thrashing or cost.refault_bytes or cost.writeback_bytes:
        return None
    tables: list[DevicePageTable] = pre["tables"]
    resident_delta = [t.resident_pages - r
                      for t, r in zip(tables, pre["resident"])]
    transitions = []
    for bid in pre["order"]:
        info = pre["buffers"][bid]
        n_pages = info["n_pages"]
        post = []
        stamps = []
        for d, table in enumerate(tables):
            state = _device_state(table, bid, n_pages)
            if state is None:
                return None
            stamp = -1
            if state[3] != info["pre"][d][3]:     # touched: stamp clock
                last = _uniform(table.buffer(bid).last_access)
                if last is None:
                    return None
                stamp = last - pre["clock"][d]
            post.append(state)
            stamps.append(stamp)
            resident_delta[d] -= state[1] - info["pre"][d][1]
        transitions.append(BufferTransition(
            index=info["index"], nbytes=info["nbytes"], n_pages=n_pages,
            pre=info["pre"], post=tuple(post), stamp=tuple(stamps)))
    if any(resident_delta):
        # Some *other* buffer's residency moved (an eviction): the
        # launch's effect is not contained in its own access set.
        return None
    return KernelCostRecord(
        gpu_id=gpu.gpu_id,
        device_ids=tuple(pre["devices"]),
        page_size=pre["page_size"],
        pre_osf=pre["osf"],
        clock_delta=tuple(t.clock - c
                          for t, c in zip(tables, pre["clock"])),
        buffers=tuple(transitions),
        cost=cost,
    )
