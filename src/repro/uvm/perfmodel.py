"""Kernel-launch pricing on a UVM device.

This module turns a bound :class:`~repro.gpu.kernel.KernelLaunch` plus the
current page-table state into a simulated duration, mutating residency as a
side effect.  The cost structure:

*  **fits** (per-launch working set ≤ device capacity): cold pages migrate
   at the (possibly degraded) fault bandwidth, partially overlapped with
   execution; execution itself runs at ``max(compute, HBM traffic)``.
*  **thrashing** (working set > capacity): every pass over the data
   re-faults evicted pages; the LRU + cyclic-sweep combination refaults the
   *entire* working set per pass, random eviction only the capacity excess.
   Compute barely overlaps — the SMs stall on fault service.

Device *pressure* (managed bytes ÷ capacity, supplied by the caller)
selects the operating point on the calibrated degradation curve: this is
what produces the paper's oversubscription cliffs even when each individual
launch fits.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.gpu.kernel import AccessPattern, ArrayAccess, KernelLaunch
from repro.gpu.specs import GpuSpec
from repro.uvm.access import (merge_page_sets, page_set, pages_for_bytes,
                              touched_page_count)
from repro.uvm.calibration import UvmModelParams
from repro.uvm.migration import MigrationEngine, MigrationStats

#: Severity order used when one buffer is touched with several patterns.
_SEVERITY = {
    AccessPattern.SEQUENTIAL: 0,
    AccessPattern.STRIDED: 1,
    AccessPattern.RANDOM: 2,
}


@dataclass(frozen=True, slots=True)
class KernelCost:
    """Full pricing breakdown of one kernel launch."""

    duration: float
    compute_seconds: float
    hbm_seconds: float
    migration_seconds: float
    thrash_seconds: float
    working_set_bytes: int
    cold_bytes: int
    refault_bytes: int
    writeback_bytes: int
    pressure: float
    thrashing: bool
    #: Intra-node GPU↔GPU page movement over NVLink (set by the UVM
    #: space's peer pre-pass, not the per-device pricer).
    peer_seconds: float = 0.0
    peer_bytes: int = 0

    @property
    def link_bytes(self) -> int:
        """Total host-link traffic of the launch."""
        return self.cold_bytes + self.refault_bytes + self.writeback_bytes


@dataclass(frozen=True, slots=True)
class _BufferPlan:
    """Per-buffer aggregation of a launch's accesses."""

    buffer_id: int
    pages: np.ndarray
    writes: bool
    pattern: AccessPattern
    passes: float


#: Bound on the pricer's memoized plans (full-sweep workloads revisit a
#: handful of keys; the cap only guards pathological key churn).
_PLAN_CACHE_CAP = 4096


def _seed_free(access: ArrayAccess, page_size: int) -> bool:
    """Whether this access's page set is independent of the launch seed.

    Full-coverage accesses short-circuit to ``arange`` regardless of
    pattern, and STRIDED never consults the seed; only partial SEQUENTIAL
    (rotating window) and partial RANDOM (seeded sample) vary per launch.
    """
    if access.pattern is AccessPattern.STRIDED:
        return True
    total = pages_for_bytes(access.buffer.nbytes, page_size)
    return touched_page_count(access, page_size) >= total


def _build_plan(buffer_id: int, group: list[ArrayAccess], page_size: int,
                seed: int, entropy: int | None) -> _BufferPlan:
    if len(group) == 1:
        # page_set output is already sorted and duplicate-free, so the
        # single-access common case skips the concatenate/argsort merge.
        access = group[0]
        return _BufferPlan(
            buffer_id=buffer_id,
            pages=page_set(access, page_size, seed, entropy=entropy),
            writes=access.direction.writes,
            pattern=access.pattern,
            passes=access.passes,
        )
    sets = [(page_set(a, page_size, seed, entropy=entropy),
             a.direction.writes)
            for a in group]
    pages, write_mask = merge_page_sets(sets)
    pattern = max((a.pattern for a in group),
                  key=lambda p: _SEVERITY[p])
    return _BufferPlan(
        buffer_id=buffer_id,
        pages=pages,
        writes=bool(write_mask.any()),
        pattern=pattern,
        passes=max(a.passes for a in group),
    )


def _plan_buffers(accesses: tuple[ArrayAccess, ...], page_size: int,
                  seed: int,
                  ordinals: dict[int, int] | None = None,
                  cache: dict | None = None) -> list[_BufferPlan]:
    """Group a launch's accesses by buffer, merging page sets.

    ``ordinals`` maps buffer ids to stable first-use ordinals so RANDOM
    page sampling is reproducible across runs (global buffer ids are not).
    ``cache`` memoizes plans whose page sets are seed-independent (see
    :func:`_seed_free`): iterative workloads re-price the same
    full-buffer accesses thousands of times, and the resulting plan —
    pages array included — is identical every launch.  Consumers only
    read the pages array (fancy indexing), so sharing it is safe.
    """
    grouped: dict[int, list[ArrayAccess]] = {}
    for access in accesses:
        grouped.setdefault(access.buffer.buffer_id, []).append(access)
    plans = []
    for buffer_id, group in grouped.items():
        entropy = ordinals.get(buffer_id) if ordinals is not None else None
        if cache is not None and all(_seed_free(a, page_size)
                                     for a in group):
            key = (buffer_id,
                   tuple((a.pattern, a.fraction, a.direction, a.passes,
                          a.buffer.nbytes) for a in group))
            plan = cache.get(key)
            if plan is None:
                plan = _build_plan(buffer_id, group, page_size, seed,
                                   entropy)
                if len(cache) < _PLAN_CACHE_CAP:
                    cache[key] = plan
            plans.append(plan)
            continue
        plans.append(_build_plan(buffer_id, group, page_size, seed,
                                 entropy))
    return plans


#: PCIe transaction amplification for random zero-copy access: scattered
#: element loads cannot be coalesced into full-width transfers.
ZERO_COPY_RANDOM_AMPLIFICATION = 8.0


class KernelPricer:
    """Prices kernel launches on one device's migration engine."""

    def __init__(self, engine: MigrationEngine, spec: GpuSpec,
                 params: UvmModelParams):
        self.engine = engine
        self.spec = spec
        self.params = params
        self._seed = 0
        #: buffer id -> first-use ordinal; keeps RANDOM page sampling
        #: deterministic across runs (ids are process-global counters).
        self._ordinals: dict[int, int] = {}
        #: Memoized seed-independent buffer plans (see _plan_buffers).
        self._plan_cache: dict[tuple, _BufferPlan] = {}

    def price(self, launch: KernelLaunch, pressure: float,
              pinned_host: frozenset[int] = frozenset()) -> KernelCost:
        """Price and apply one launch; ``pressure`` is device OSF.

        Buffers in ``pinned_host`` (``cudaMemAdviseSetPreferredLocation``
        host) are accessed zero-copy over PCIe: no migration, no device
        residency, no thrash degradation — but every pass pays the link,
        and random access pays transaction amplification on top.
        """
        self._seed += 1
        table = self.engine.table
        regular = tuple(a for a in launch.accesses
                        if a.buffer.buffer_id not in pinned_host)
        zero_copy_s = 0.0
        for access in launch.accesses:
            if access.buffer.buffer_id in pinned_host:
                traffic = access.touched_bytes * access.passes
                if access.pattern is AccessPattern.RANDOM:
                    traffic *= ZERO_COPY_RANDOM_AMPLIFICATION
                zero_copy_s += traffic / self.spec.pcie_bandwidth
        launch = KernelLaunch(launch.kernel, launch.config, launch.args,
                              regular) if zero_copy_s else launch
        for access in launch.accesses:
            self._ordinals.setdefault(access.buffer.buffer_id,
                                      len(self._ordinals))
        plans = _plan_buffers(launch.accesses, table.page_size,
                              self._seed, self._ordinals,
                              cache=self._plan_cache)

        ws_pages = sum(len(p.pages) for p in plans)
        ws_bytes = ws_pages * table.page_size
        capacity = table.capacity_pages
        pressure = max(pressure, ws_pages / capacity)

        compute_s = launch.flops / self.spec.fp32_flops
        traffic = sum(a.touched_bytes * a.passes for a in launch.accesses)
        hbm_s = traffic / self.spec.hbm_bandwidth

        if ws_pages <= capacity:
            cost = self._price_fitting(plans, pressure, compute_s, hbm_s,
                                       ws_bytes)
        else:
            cost = self._price_thrashing(plans, pressure, compute_s, hbm_s,
                                         ws_bytes, capacity)
        if zero_copy_s:
            cost = dataclasses.replace(
                cost,
                duration=cost.duration + zero_copy_s,
                migration_seconds=cost.migration_seconds + zero_copy_s)
        return cost

    # -- the two regimes ------------------------------------------------------

    def _price_fitting(self, plans: list[_BufferPlan], pressure: float,
                       compute_s: float, hbm_s: float,
                       ws_bytes: int) -> KernelCost:
        stats = MigrationStats()
        for plan in plans:
            stats = stats + self.engine.migrate_in(
                plan.buffer_id, plan.pages, write=plan.writes,
                pattern=plan.pattern, osf=pressure)
        exec_s = max(compute_s, hbm_s)
        mig_s = stats.seconds
        # Prefetch pipelining hides part of the shorter phase.
        overlap = self.params.migration_overlap * min(mig_s, exec_s)
        duration = (self.spec.kernel_launch_overhead + mig_s + exec_s
                    - overlap)
        page = self.engine.table.page_size
        return KernelCost(
            duration=duration,
            compute_seconds=compute_s,
            hbm_seconds=hbm_s,
            migration_seconds=mig_s,
            thrash_seconds=0.0,
            working_set_bytes=ws_bytes,
            cold_bytes=stats.migrated_pages * page,
            refault_bytes=0,
            writeback_bytes=stats.writeback_pages * page,
            pressure=pressure,
            thrashing=False,
        )

    def _price_thrashing(self, plans: list[_BufferPlan], pressure: float,
                         compute_s: float, hbm_s: float,
                         ws_bytes: int, capacity: int) -> KernelCost:
        table = self.engine.table
        page = table.page_size
        cap_bytes = capacity * page
        lru = self.engine.eviction_order == "lru"

        link_s = 0.0
        cold_bytes = refault_bytes = wb_bytes = 0
        for plan in plans:
            touched = len(plan.pages) * page
            # First pass: everything not resident comes in cold.
            resident = int(
                table.buffer(plan.buffer_id).resident[plan.pages].sum())
            cold = touched - resident * page
            # Later passes: cyclic sweep under LRU refaults everything the
            # sweep itself evicted; random replacement only the excess.
            share = touched / ws_bytes
            cap_share = cap_bytes * share
            if lru:
                refault_frac = 1.0 if touched > cap_share else 0.0
            else:
                refault_frac = max(0.0, 1.0 - cap_share / touched)
            refault = touched * refault_frac * max(0.0, plan.passes - 1)
            wb = (cold + refault) if plan.writes else 0.0
            in_pages = int((cold + refault) / page)
            link_s += self.engine.transfer_seconds(
                in_pages, int(wb / page), plan.pattern, pressure)
            cold_bytes += int(cold)
            refault_bytes += int(refault)
            wb_bytes += int(wb)
            # End state: the tail of the sweep stays resident.
            self._settle_residency(plan, capacity, ws_bytes)

        hidden = self.params.thrash_overlap * min(compute_s, link_s)
        duration = (self.spec.kernel_launch_overhead + link_s + compute_s
                    - hidden)
        return KernelCost(
            duration=duration,
            compute_seconds=compute_s,
            hbm_seconds=hbm_s,
            migration_seconds=0.0,
            thrash_seconds=link_s,
            working_set_bytes=ws_bytes,
            cold_bytes=cold_bytes,
            refault_bytes=refault_bytes,
            writeback_bytes=wb_bytes,
            pressure=pressure,
            thrashing=True,
        )

    def _settle_residency(self, plan: _BufferPlan, capacity: int,
                          ws_bytes: int) -> None:
        """Leave the page table in the sweep's end state."""
        table = self.engine.table
        share = len(plan.pages) * table.page_size / ws_bytes
        keep = min(len(plan.pages), max(1, int(capacity * share)))
        clock = table.tick()
        # Free everything this buffer held, then admit the sweep tail.
        table.drop(plan.buffer_id)
        if self.engine.eviction_order == "lfu":
            # Frequency-aware (FALL [7]) replacement: once-touched sweep
            # pages never displace warmer pages — the tail only fills the
            # space left over.
            keep = min(keep, table.free_pages)
            if keep == 0:
                return
        tail = plan.pages[-keep:]
        evicted = table.ensure_free(
            len(tail), order=self.engine.eviction_order,
            rng=self.engine.rng, protect=plan.buffer_id)
        del evicted  # write-back already priced in the thrash formula
        table.admit(plan.buffer_id, tail, write=plan.writes, clock=clock)
