"""Simulated NVIDIA Unified Virtual Memory.

Implements the substrate the paper treats as a black box: page tables at
the UVM migration granule, a batching fault/migration engine (demand
faults vs. bulk-DMA prefetch pricing), LRU / FALL-aware LFU / random
eviction, the density tree-prefetcher, ``cudaMemAdvise`` equivalents
(including read-mostly duplication and host-pinned zero-copy), explicit
``cudaMemPrefetchAsync``, NVLink peer-to-peer page migration, and a
calibrated performance model whose oversubscription cliffs reproduce the
paper's Fig. 1/6a behaviour.
"""

from repro.uvm.access import merge_page_sets, page_set, pages_for_bytes
from repro.uvm.advise import Advise, AdviseRegistry, AdviseSet
from repro.uvm.backends import (
    DEFAULT_BACKEND,
    PAGING_BACKENDS,
    CpuPmeBackend,
    GpuvmBackend,
    PagingBackend,
    make_paging_backend,
)
from repro.uvm.calibration import (
    NO_THRASH,
    PAPER_CALIBRATION,
    PatternParams,
    UvmModelParams,
)
from repro.uvm.manager import HostAccessCost, UvmSpace, UvmStats
from repro.uvm.migration import MigrationEngine, MigrationStats
from repro.uvm.pagetable import (
    BufferPages,
    DevicePageTable,
    EvictionResult,
    UvmError,
)
from repro.uvm.perfmodel import KernelCost, KernelPricer
from repro.uvm.prefetch import PrefetchConfig, expand_faults

__all__ = [
    "Advise",
    "AdviseRegistry",
    "AdviseSet",
    "BufferPages",
    "CpuPmeBackend",
    "DEFAULT_BACKEND",
    "GpuvmBackend",
    "PAGING_BACKENDS",
    "PagingBackend",
    "DevicePageTable",
    "EvictionResult",
    "HostAccessCost",
    "KernelCost",
    "KernelPricer",
    "MigrationEngine",
    "MigrationStats",
    "NO_THRASH",
    "PAPER_CALIBRATION",
    "PatternParams",
    "PrefetchConfig",
    "UvmError",
    "UvmModelParams",
    "UvmSpace",
    "UvmStats",
    "expand_faults",
    "make_paging_backend",
    "merge_page_sets",
    "page_set",
    "pages_for_bytes",
]
