"""Density-based tree prefetcher.

Models the heuristic NVIDIA's driver applies to UVM faults: base 64 KiB
blocks are migrated individually, but once enough of an aligned 2 MiB
region is (or is about to be) resident, the whole region is pulled over in
one go.  This is what makes *sequential* oversubscribed streaming run near
link speed while *random* access collapses — exactly the sensitivity the
paper's workloads exhibit (cf. [7], [9], [18]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.kernel import AccessPattern
from repro.uvm.pagetable import BufferPages


@dataclass(frozen=True, slots=True)
class PrefetchConfig:
    """Tuning knobs of the tree prefetcher."""

    enabled: bool = True
    block_pages: int = 32          # 2 MiB regions of 64 KiB base pages
    density_threshold: float = 0.5  # fraction of block that must be hot

    def __post_init__(self) -> None:
        if self.block_pages < 1:
            raise ValueError("block_pages must be >= 1")
        if not 0.0 < self.density_threshold <= 1.0:
            raise ValueError("density_threshold must be in (0, 1]")


def expand_faults(faults: np.ndarray, state: BufferPages,
                  pattern: AccessPattern,
                  config: PrefetchConfig) -> np.ndarray:
    """Grow a fault set with prefetched neighbour pages.

    Returns the sorted union of the original faults and any extra pages the
    prefetcher decides to migrate alongside them.  Random access defeats
    the density heuristic, so it is returned unchanged.
    """
    if (not config.enabled or len(faults) == 0
            or pattern is AccessPattern.RANDOM
            or config.block_pages == 1):
        return faults

    n_pages = state.n_pages
    blocks = np.unique(faults // config.block_pages)
    hot = state.resident.copy()
    hot[faults] = True

    extra: list[np.ndarray] = []
    for block in blocks:
        lo = int(block) * config.block_pages
        hi = min(lo + config.block_pages, n_pages)
        width = hi - lo
        density = hot[lo:hi].sum() / width
        if density >= config.density_threshold:
            block_pages = np.arange(lo, hi, dtype=np.int64)
            extra.append(block_pages[~state.resident[lo:hi]])
    if not extra:
        return faults
    merged = np.union1d(faults, np.concatenate(extra))
    return merged
