"""``cudaMemAdvise`` equivalents.

The paper's "hand-tuning" alternative (§I) consists of prefetch calls and
memory advises; GrOUT's pitch is that users should not need them, but the
substrate still implements them so the ablation benchmarks can compare
tuned vs. untuned single-node UVM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Advise(enum.Enum):
    """Supported memory advises (mirrors the CUDA enum)."""

    READ_MOSTLY = "read_mostly"            # duplicate read-only copies
    PREFERRED_LOCATION_HOST = "preferred_host"   # pin to host, map over PCIe
    PREFERRED_LOCATION_DEVICE = "preferred_device"
    ACCESSED_BY = "accessed_by"            # establish mapping, no migration


@dataclass(slots=True)
class AdviseSet:
    """Advises applied to one managed buffer."""

    read_mostly: bool = False
    preferred_host: bool = False
    preferred_device: int | None = None
    accessed_by: set[int] = field(default_factory=set)

    def apply(self, advise: Advise, device: int | None = None) -> None:
        """Apply one advise (some require a device index)."""
        if advise is Advise.READ_MOSTLY:
            self.read_mostly = True
        elif advise is Advise.PREFERRED_LOCATION_HOST:
            self.preferred_host = True
            self.preferred_device = None
        elif advise is Advise.PREFERRED_LOCATION_DEVICE:
            if device is None:
                raise ValueError(
                    "PREFERRED_LOCATION_DEVICE requires a device index")
            self.preferred_device = device
            self.preferred_host = False
        elif advise is Advise.ACCESSED_BY:
            if device is None:
                raise ValueError("ACCESSED_BY requires a device index")
            self.accessed_by.add(device)
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown advise {advise!r}")

    def clear(self) -> None:
        """Reset every advise on the buffer."""
        self.read_mostly = False
        self.preferred_host = False
        self.preferred_device = None
        self.accessed_by.clear()


class AdviseRegistry:
    """Per-UVM-space store of buffer advises."""

    def __init__(self) -> None:
        self._advises: dict[int, AdviseSet] = {}

    def for_buffer(self, buffer_id: int) -> AdviseSet:
        """The (lazily created) advise set of a buffer."""
        return self._advises.setdefault(buffer_id, AdviseSet())

    def advise(self, buffer_id: int, advise: Advise,
               device: int | None = None) -> None:
        """Apply an advise to a buffer."""
        self.for_buffer(buffer_id).apply(advise, device)

    def forget(self, buffer_id: int) -> None:
        """Drop a buffer's advises (no-op when absent)."""
        self._advises.pop(buffer_id, None)
