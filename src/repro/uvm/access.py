"""Translate kernel access descriptors into concrete page sets.

Page selection is deterministic: RANDOM patterns derive their subset from a
seed mixed from the buffer id and the launch sequence number, so identical
schedules replay identical fault traces.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.kernel import AccessPattern, ArrayAccess


def pages_for_bytes(nbytes: int, page_size: int) -> int:
    """Number of base pages covering ``nbytes`` (at least one)."""
    if nbytes <= 0:
        return 1
    return -(-int(nbytes) // page_size)


def touched_page_count(access: ArrayAccess, page_size: int) -> int:
    """Pages an access touches, honouring its fraction."""
    total = pages_for_bytes(access.buffer.nbytes, page_size)
    return max(1, min(total, int(round(total * access.fraction))))


def page_set(access: ArrayAccess, page_size: int, seed: int,
             entropy: int | None = None) -> np.ndarray:
    """Concrete sorted page indices an access touches.

    * SEQUENTIAL — a contiguous window; its start rotates with the seed so
      repeated partial sweeps do not artificially pin the same prefix.
    * STRIDED — evenly spaced pages across the whole buffer.
    * RANDOM — a seeded uniform sample without replacement.

    ``entropy`` decorrelates different buffers under the same ``seed``.
    Callers that care about cross-run determinism (the kernel pricer)
    must pass something stable — e.g. a first-use ordinal — because the
    default, the global buffer id, differs between runs in one process.
    """
    total = pages_for_bytes(access.buffer.nbytes, page_size)
    count = touched_page_count(access, page_size)
    if count >= total:
        return np.arange(total, dtype=np.int64)
    if entropy is None:
        entropy = access.buffer.buffer_id

    if access.pattern is AccessPattern.SEQUENTIAL:
        start = (seed * 2654435761 % total) if access.fraction < 1.0 else 0
        idx = (np.arange(count, dtype=np.int64) + start) % total
        return np.sort(idx)
    if access.pattern is AccessPattern.STRIDED:
        idx = np.linspace(0, total - 1, num=count, dtype=np.int64)
        return np.unique(idx)
    if access.pattern is AccessPattern.RANDOM:
        mixed = (entropy * 0x9E3779B97F4A7C15 + seed) % (1 << 64)
        rng = np.random.default_rng(mixed)
        return np.sort(rng.choice(total, size=count, replace=False)
                       .astype(np.int64))
    raise ValueError(f"unknown access pattern {access.pattern!r}")


def merge_page_sets(sets: list[tuple[np.ndarray, bool]]) -> tuple[np.ndarray, np.ndarray]:
    """Union several (pages, writes?) sets of one buffer.

    Returns ``(pages, write_mask)`` where ``write_mask[i]`` says whether
    page ``pages[i]`` is written by at least one access.
    """
    if not sets:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
    all_pages = np.concatenate([p for p, _ in sets])
    all_writes = np.concatenate(
        [np.full(len(p), w, dtype=bool) for p, w in sets])
    order = np.argsort(all_pages, kind="stable")
    pages_sorted = all_pages[order]
    writes_sorted = all_writes[order]
    uniq, start = np.unique(pages_sorted, return_index=True)
    write_mask = np.logical_or.reduceat(writes_sorted, start)
    return uniq, write_mask
