"""Calibration constants of the UVM performance model.

The model's skeleton is physics (bytes over links, fault-batch latencies);
what cannot be derived from first principles — because the real UVM driver
is a black box, as the paper stresses in §II-A — is the *degradation curve*
of the fault path under memory pressure.  Following the characterisation
literature the paper builds on ([7], [9], [18], [19]), we model the
effective fault bandwidth as

    eff(osf) = fault_bw_efficiency / (1 + beta * max(0, osf - knee)**gamma)

where ``osf`` is the device-level oversubscription factor (managed bytes /
device capacity).  ``knee``, ``beta`` and ``gamma`` are per-access-pattern
constants: sequential streaming survives oversubscription far longer than
random access (the prefetcher and evict-ahead pipeline keep the link busy),
while random/FALL-heavy access collapses almost immediately [7].

``PAPER_CALIBRATION`` is tuned so the reproduction lands near the paper's
anchors (see EXPERIMENTS.md):

* near-linear scaling of single-node runs while footprints fit (≤1× OSF);
* MLE's ~72× step at 32→64 GB (2× OSF, random-heavy ensemble);
* CG's ~77× step at 64→96 GB (3× OSF, sequential iterative);
* MV's ~342× step at 64→96 GB (3× OSF, single-pass streaming at scale);
* GrOUT on two nodes flattening those steps to ~4–13×.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.kernel import AccessPattern


@dataclass(frozen=True, slots=True)
class PatternParams:
    """Thrash-curve constants for one access pattern."""

    knee: float      # OSF below which the fault path runs at base efficiency
    beta: float      # degradation strength past the knee
    gamma: float     # degradation curvature past the knee
    batch_penalty: float = 1.0   # multiplier on fault-batch count
    prefetchable: bool = True    # whether the tree prefetcher helps

    def __post_init__(self) -> None:
        if self.knee < 0 or self.beta < 0 or self.gamma <= 0:
            raise ValueError("invalid thrash-curve constants")
        if self.batch_penalty < 1.0:
            raise ValueError("batch_penalty must be >= 1")

    def degradation(self, osf: float) -> float:
        """Divisor applied to the fault bandwidth at oversubscription ``osf``."""
        excess = max(0.0, osf - self.knee)
        return 1.0 + self.beta * excess ** self.gamma


@dataclass(frozen=True, slots=True)
class UvmModelParams:
    """Every tunable of the UVM timing model, in one place."""

    #: Fraction of raw PCIe bandwidth the un-thrashed fault path achieves.
    fault_bw_efficiency: float = 0.80
    #: Dirty-page eviction costs this multiple of the page bytes (D2H).
    writeback_factor: float = 1.0
    #: Fraction of migration time hidden under concurrent execution when the
    #: working set fits (prefetch pipelining); 0 = fully serial.
    migration_overlap: float = 0.5
    #: Under thrashing the SMs stall on faults; compute overlaps this little.
    thrash_overlap: float = 0.05
    #: Per-pattern degradation curves.
    patterns: dict[AccessPattern, PatternParams] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.fault_bw_efficiency <= 1.0:
            raise ValueError("fault_bw_efficiency must be in (0, 1]")
        for name in ("migration_overlap", "thrash_overlap"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        for pattern in AccessPattern:
            if pattern not in self.patterns:
                raise ValueError(f"missing PatternParams for {pattern}")

    def pattern(self, pattern: AccessPattern) -> PatternParams:
        """Constants of one access pattern's degradation curve."""
        return self.patterns[pattern]


def _paper_patterns() -> dict[AccessPattern, PatternParams]:
    return {
        # Streaming sweeps: evict-ahead keeps the link at full efficiency
        # up to ~2× OSF, then cyclic-LRU interference compounds violently
        # (MV's 342× step, Fig. 6a).
        AccessPattern.SEQUENTIAL: PatternParams(
            knee=2.05, beta=430.0, gamma=2.2, batch_penalty=1.0),
        # Regular strides: prefetch still works; past the same knee the
        # degradation is an order of magnitude gentler (CG's 77× step).
        AccessPattern.STRIDED: PatternParams(
            knee=2.0, beta=70.0, gamma=2.0, batch_penalty=1.5),
        # Data-dependent access: FALL pages defeat the prefetcher, so the
        # collapse starts as soon as the device oversubscribes at all [7] —
        # but it *saturates* (gamma < 1): the fault path is already running
        # at its floor (MLE's 72× step at 2×, then flattening).
        AccessPattern.RANDOM: PatternParams(
            knee=1.05, beta=48.0, gamma=0.5, batch_penalty=4.0,
            prefetchable=False),
    }


#: Constants used by every paper-reproduction benchmark.
PAPER_CALIBRATION = UvmModelParams(patterns=_paper_patterns())


#: A flat, degradation-free variant for unit tests that want pure link physics.
NO_THRASH = UvmModelParams(
    fault_bw_efficiency=1.0,
    migration_overlap=0.0,
    thrash_overlap=0.0,
    patterns={p: PatternParams(knee=float("inf"), beta=0.0, gamma=1.0)
              for p in AccessPattern},
)
