"""Per-device page tables for the simulated UVM space.

Residency is tracked at base-page granularity (default 64 KiB, the real
UVM migration granule) with NumPy bitmaps, so a 160 GB buffer costs a few
megabytes of bookkeeping and every operation is vectorised.

The host's DRAM acts as the backing store: a page is either *resident* on
this device (possibly *dirty*, i.e. the host copy is stale) or lives on the
host.  Duplicated read-only residency (``cudaMemAdviseSetReadMostly``) is
modelled by admitting pages with dirtiness suppressed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class UvmError(Exception):
    """Raised on illegal UVM-state transitions."""


@dataclass(slots=True)
class BufferPages:
    """Residency bitmaps of one managed buffer on one device."""

    buffer_id: int
    n_pages: int
    resident: np.ndarray      # bool[n_pages]
    dirty: np.ndarray         # bool[n_pages]
    last_access: np.ndarray   # int64[n_pages], global LRU clock (0 = never)
    access_count: np.ndarray  # int64[n_pages], lifetime touch count (LFU)
    read_mostly: bool = False

    @classmethod
    def empty(cls, buffer_id: int, n_pages: int) -> "BufferPages":
        if n_pages <= 0:
            raise ValueError(f"buffer needs >= 1 page, got {n_pages}")
        return cls(
            buffer_id=buffer_id,
            n_pages=n_pages,
            resident=np.zeros(n_pages, dtype=bool),
            dirty=np.zeros(n_pages, dtype=bool),
            last_access=np.zeros(n_pages, dtype=np.int64),
            access_count=np.zeros(n_pages, dtype=np.int64),
        )

    @property
    def resident_count(self) -> int:
        """Number of resident pages."""
        return int(self.resident.sum())

    @property
    def dirty_count(self) -> int:
        """Number of dirty pages."""
        return int(self.dirty.sum())


@dataclass(frozen=True, slots=True)
class EvictionResult:
    """Outcome of freeing device pages."""

    evicted_pages: int
    dirty_pages: int     # subset of evicted pages needing write-back


class DevicePageTable:
    """All UVM bookkeeping for one GPU.

    Parameters
    ----------
    capacity_pages:
        Device pages available to managed memory (HBM size / page size).
    page_size:
        Bytes per base page; only used by byte-level convenience helpers.
    """

    def __init__(self, capacity_pages: int, page_size: int):
        if capacity_pages <= 0:
            raise ValueError("capacity_pages must be positive")
        self.capacity_pages = capacity_pages
        self.page_size = page_size
        self._buffers: dict[int, BufferPages] = {}
        self._resident_total = 0
        self._clock = 0

    # -- registration ------------------------------------------------------

    def register(self, buffer_id: int, n_pages: int,
                 read_mostly: bool = False) -> None:
        """Start tracking a managed buffer (idempotent for same shape)."""
        existing = self._buffers.get(buffer_id)
        if existing is not None:
            if existing.n_pages != n_pages:
                raise UvmError(
                    f"buffer {buffer_id} re-registered with {n_pages} pages, "
                    f"was {existing.n_pages}")
            return
        pages = BufferPages.empty(buffer_id, n_pages)
        pages.read_mostly = read_mostly
        self._buffers[buffer_id] = pages

    def unregister(self, buffer_id: int) -> None:
        """Drop a buffer; its resident pages are freed without write-back."""
        pages = self._buffers.pop(buffer_id, None)
        if pages is not None:
            self._resident_total -= pages.resident_count

    def is_registered(self, buffer_id: int) -> bool:
        """Whether the buffer is tracked on this device."""
        return buffer_id in self._buffers

    def buffer(self, buffer_id: int) -> BufferPages:
        """Bitmap state of one buffer (raises for unknown ids)."""
        try:
            return self._buffers[buffer_id]
        except KeyError:
            raise UvmError(f"buffer {buffer_id} is not registered") from None

    def buffers(self) -> list[BufferPages]:
        """Every tracked buffer's state."""
        return list(self._buffers.values())

    # -- global state --------------------------------------------------------

    @property
    def resident_pages(self) -> int:
        """Total resident pages on the device."""
        return self._resident_total

    @property
    def free_pages(self) -> int:
        """Remaining device page capacity."""
        return self.capacity_pages - self._resident_total

    @property
    def clock(self) -> int:
        """Current LRU clock value."""
        return self._clock

    def tick(self) -> int:
        """Advance the LRU clock; one tick per logical operation."""
        self._clock += 1
        return self._clock

    def advance_clock(self, ticks: int) -> int:
        """Advance the LRU clock by several ticks at once.

        The plan-cache cost replay reproduces a recorded launch's clock
        movement without re-running the per-plan ``tick()`` calls; the
        resulting clock value is identical to the live path's.
        """
        if ticks < 0:
            raise ValueError("clock only moves forward")
        self._clock += ticks
        return self._clock

    def resident_bytes(self, buffer_id: int | None = None) -> int:
        """Resident bytes of one buffer, or of the whole device."""
        if buffer_id is None:
            return self._resident_total * self.page_size
        return self.buffer(buffer_id).resident_count * self.page_size

    # -- faults & admission ----------------------------------------------------

    def fault_pages(self, buffer_id: int, pages: np.ndarray) -> np.ndarray:
        """Subset of ``pages`` not currently resident (the faults)."""
        state = self.buffer(buffer_id)
        return pages[~state.resident[pages]]

    def admit(self, buffer_id: int, pages: np.ndarray, *,
              write: bool, clock: int | None = None) -> int:
        """Make ``pages`` resident and stamp their access clock.

        Returns the number of *newly* admitted pages.  The caller is
        responsible for having evicted enough beforehand; over-committing
        raises because it means the migration engine mis-accounted.
        """
        state = self.buffer(buffer_id)
        if clock is None:
            clock = self.tick()
        if len(pages) == 0:
            return 0
        was_resident = state.resident[pages]
        new = int((~was_resident).sum())
        if new > self.free_pages:
            raise UvmError(
                f"admitting {new} pages exceeds free capacity "
                f"{self.free_pages} — evict first")
        state.resident[pages] = True
        state.last_access[pages] = clock
        state.access_count[pages] += 1
        if write and not state.read_mostly:
            state.dirty[pages] = True
        self._resident_total += new
        return new

    def touch(self, buffer_id: int, pages: np.ndarray, *,
              write: bool, clock: int | None = None) -> None:
        """Refresh the clock (and dirtiness) of already-resident pages."""
        state = self.buffer(buffer_id)
        if clock is None:
            clock = self.tick()
        resident = pages[state.resident[pages]]
        state.last_access[resident] = clock
        state.access_count[resident] += 1
        if write and not state.read_mostly:
            state.dirty[resident] = True

    def fill_uniform(self, buffer_id: int, *, resident: bool,
                     dirty: bool | None = None, clock: int | None = None,
                     touches: int = 0) -> None:
        """Set one buffer's pages to a uniform state in O(slice) time.

        The plan-cache cost replay applies a recorded launch's
        all-or-nothing residency transition without walking page sets:
        full admission stamps every page with one clock value and one
        access-count delta — exactly what ``touch`` + ``admit`` over a
        full-coverage page set would have produced.  ``dirty=None``
        leaves dirtiness untouched (read-only access).  The caller is
        responsible for capacity (guard ``free_pages`` first); admitting
        past capacity raises as :meth:`admit` would.
        """
        state = self.buffer(buffer_id)
        was = state.resident_count
        now = state.n_pages if resident else 0
        if now - was > self.free_pages:
            raise UvmError(
                f"admitting {now - was} pages exceeds free capacity "
                f"{self.free_pages} — evict first")
        state.resident[:] = resident
        if dirty is not None:
            state.dirty[:] = dirty and not state.read_mostly
        elif not resident:
            state.dirty[:] = False
        if clock is not None:
            state.last_access[:] = clock
        if touches:
            state.access_count += touches
        self._resident_total += now - was

    # -- eviction -----------------------------------------------------------------

    def evict(self, n_pages: int, *, order: str = "lru",
              rng: np.random.Generator | None = None,
              protect: int | None = None) -> EvictionResult:
        """Free ``n_pages`` device pages.

        Parameters
        ----------
        order:
            ``"lru"`` (oldest clock first), ``"lfu"`` (fewest lifetime
            touches first — the FALL-aware policy of [7]: streaming pages
            get evicted before frequently re-used ones), or ``"random"``.
        rng:
            Required for ``"random"``; deterministic generator.
        protect:
            Optional buffer_id whose pages are evicted only as a last
            resort (the buffer the current kernel is actively streaming).

        Returns page counts; the *caller* charges write-back time for the
        dirty subset.
        """
        if n_pages <= 0:
            return EvictionResult(0, 0)
        if n_pages > self._resident_total:
            raise UvmError(
                f"cannot evict {n_pages} pages, only {self._resident_total} "
                "resident")

        # Candidate pool per buffer: clocks, counts, local indices.
        entries: list[tuple[np.ndarray, np.ndarray, np.ndarray,
                            BufferPages, bool]] = []
        for state in self._buffers.values():
            idx = np.flatnonzero(state.resident)
            if len(idx) == 0:
                continue
            entries.append((state.last_access[idx],
                            state.access_count[idx], idx, state,
                            state.buffer_id == protect))

        remaining = n_pages
        evicted = dirty = 0
        # Two rounds: everything except the protected buffer, then it too.
        for round_protected in (False, True):
            if remaining <= 0:
                break
            pool = [e for e in entries if e[4] == round_protected]
            if not pool:
                continue
            clocks = np.concatenate([e[0] for e in pool])
            counts = np.concatenate([e[1] for e in pool])
            owner = np.concatenate(
                [np.full(len(e[0]), i) for i, e in enumerate(pool)])
            local = np.concatenate([e[2] for e in pool])
            take = min(remaining, len(clocks))
            if order == "lru":
                sel = np.argpartition(clocks, take - 1)[:take] \
                    if take < len(clocks) else np.arange(len(clocks))
            elif order == "lfu":
                # Fewest touches first, oldest clock breaking ties.
                sel = np.lexsort((clocks, counts))[:take]
            elif order == "random":
                if rng is None:
                    raise ValueError("random eviction requires an rng")
                sel = rng.choice(len(clocks), size=take, replace=False)
            else:
                raise ValueError(f"unknown eviction order {order!r}")
            for i, entry in enumerate(pool):
                mask = owner[sel] == i
                pages = local[sel[mask]]
                if len(pages) == 0:
                    continue
                state = entry[3]
                dirty += int(state.dirty[pages].sum())
                state.resident[pages] = False
                state.dirty[pages] = False
            evicted += take
            remaining -= take

        self._resident_total -= evicted
        return EvictionResult(evicted, dirty)

    def ensure_free(self, n_pages: int, **evict_kwargs: object) -> EvictionResult:
        """Evict just enough to have ``n_pages`` free; no-op if already free."""
        need = n_pages - self.free_pages
        if need <= 0:
            return EvictionResult(0, 0)
        if n_pages > self.capacity_pages:
            raise UvmError(
                f"request for {n_pages} free pages exceeds device capacity "
                f"{self.capacity_pages}")
        return self.evict(need, **evict_kwargs)  # type: ignore[arg-type]

    # -- write-back ----------------------------------------------------------------

    def clean(self, buffer_id: int) -> int:
        """Mark a buffer's dirty pages clean (after write-back); returns count."""
        state = self.buffer(buffer_id)
        n = state.dirty_count
        state.dirty[:] = False
        return n

    def drop(self, buffer_id: int) -> int:
        """Evict all pages of one buffer without write-back; returns count.

        Used when another node takes ownership and the local copy is
        invalidated (the coherence layer already shipped the data).
        """
        state = self.buffer(buffer_id)
        n = state.resident_count
        state.resident[:] = False
        state.dirty[:] = False
        self._resident_total -= n
        return n

    def __repr__(self) -> str:
        return (f"<DevicePageTable {self._resident_total}/"
                f"{self.capacity_pages} pages, {len(self._buffers)} buffers>")
