"""GroutService — the transport-independent serving core.

One persistent :class:`~repro.core.runtime.GroutRuntime` hosts every
submission: each accepted workload spec opens a
:class:`~repro.core.session.Session`, its CEs are enqueued eagerly
(submission never blocks on other tenants' work) and interleaved with
every other live session by the controller's FairShareGate.  Simulated
time advances either cooperatively (:meth:`GroutService.pump`, the
daemon's scheduling quantum) or to one submission's completion
(:meth:`GroutService.settle`).

Admission control is per tenant: at most ``tenant_quota`` sessions in
flight per tenant (and ``max_sessions`` overall); refusals and
acceptances are counted under the ``grout_serve_*`` metrics so the
Prometheus endpoint tells the whole story.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.serve.protocol import SCHEMA, SpecError, WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import RuntimeConfig
    from repro.core.session import Session

__all__ = ["GroutService", "QuotaError", "ServiceClosed", "Ticket"]


class ServiceClosed(RuntimeError):
    """Submission after the service started shutting down (HTTP 503)."""


class QuotaError(RuntimeError):
    """Submission over the tenant's (or the service's) budget (HTTP 429)."""


@dataclass(slots=True)
class Ticket:
    """One accepted submission's lifecycle handle."""

    ticket_id: int
    spec: WorkloadSpec
    session: "Session"
    submitted_at: float                   # simulated seconds
    workload: object | None = None        # registry Workload instance
    ce_count: int = 0
    pending: int = 0                      # CE done-events still to fire
    completed_at: float | None = None     # stamped by the last CE's event
    report: dict | None = field(default=None, repr=False)

    @property
    def done(self) -> bool:
        """Whether every CE of this submission has completed."""
        return self.pending == 0

    @property
    def finalized(self) -> bool:
        """Whether the run-report has been produced."""
        return self.report is not None


class GroutService:
    """Hundreds of concurrent sessions on one shared simulated cluster."""

    def __init__(self, config: "RuntimeConfig | None" = None, *,
                 tenant_quota: int = 64, max_sessions: int = 1024):
        from repro.core.config import RuntimeConfig
        if config is None:
            config = RuntimeConfig(policy="round-robin")
        if config.policy == "vector-step":
            raise ValueError(
                "serve needs an online policy (the runtime outlives any "
                "single workload, so there is no tuned vector); pick "
                "e.g. policy='round-robin' or 'least-loaded'")
        if config.shards is not None:
            raise ValueError("serve runs the engine cooperatively and "
                             "does not support shard mode")
        if tenant_quota < 1 or max_sessions < 1:
            raise ValueError("quotas must be >= 1")
        self.config = config
        self.tenant_quota = tenant_quota
        self.max_sessions = max_sessions
        self.runtime = config.build_runtime()
        self._tickets: dict[int, Ticket] = {}   # in flight, by id
        #: Ticket ids whose last CE completed, awaiting finalization —
        #: pushed by the per-ticket countdown callback, drained by
        #: :meth:`_collect`, so collection never scans every ticket.
        self._finished: list[int] = []
        self._next_id = 0
        self._closed = False
        #: High-water mark of concurrently open sessions (the load
        #: story's headline number).
        self.peak_inflight = 0
        registry = self.runtime.metrics
        self._accepted = registry.family(
            "grout_serve_sessions_accepted_total")
        self._rejected = registry.family(
            "grout_serve_sessions_rejected_total")
        self._inflight = registry.family(
            "grout_serve_sessions_inflight").labels()
        self._latency = registry.family(
            "grout_serve_request_latency_seconds").labels()

    # -- admission -------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` ran (or is running)."""
        return self._closed

    def inflight(self, tenant: str | None = None) -> int:
        """Open submissions, overall or for one tenant."""
        if tenant is None:
            return len(self._tickets)
        return sum(1 for t in self._tickets.values()
                   if t.spec.tenant == tenant)

    def _reject(self, tenant: str, reason: str) -> None:
        self._rejected.labels(tenant=tenant, reason=reason).inc()

    def submit(self, payload: "Mapping[str, object] | WorkloadSpec"
               ) -> Ticket:
        """Admit one workload spec and enqueue its CEs.

        Raises :class:`SpecError` (bad spec), :class:`QuotaError` (over
        budget) or :class:`ServiceClosed` (shutting down); every refusal
        is also counted under ``grout_serve_sessions_rejected_total``.
        The returned ticket's work runs whenever simulated time next
        advances (:meth:`pump`/:meth:`settle`).
        """
        tenant = payload.tenant if isinstance(payload, WorkloadSpec) \
            else str(payload.get("tenant", "default") or "default") \
            if isinstance(payload, Mapping) else "default"
        if self._closed:
            self._reject(tenant, "shutting-down")
            raise ServiceClosed("service is shutting down")
        try:
            spec = payload if isinstance(payload, WorkloadSpec) \
                else WorkloadSpec.from_dict(payload)
        except SpecError:
            self._reject(tenant, "bad-spec")
            raise
        if len(self._tickets) >= self.max_sessions:
            self._reject(spec.tenant, "quota")
            raise QuotaError(
                f"service is at its session cap ({self.max_sessions})")
        if self.inflight(spec.tenant) >= self.tenant_quota:
            self._reject(spec.tenant, "quota")
            raise QuotaError(
                f"tenant {spec.tenant!r} is at its quota "
                f"({self.tenant_quota} sessions in flight)")
        # Registry workloads are generated deterministically from their
        # spec knobs, so the spec IS the program identity — hot tenants
        # resubmitting the same spec replay memoized scheduling
        # decisions (seed is deliberately excluded: it varies data, not
        # structure, for every registry workload; a seed-dependent
        # structure would be caught per CE and fall back).
        plan_key = None
        if self.config.plan_cache and spec.workload is not None:
            plan_key = (f"{spec.workload}:{spec.footprint_bytes}"
                        f":{spec.n_chunks}")
        try:
            session = self.runtime.session(spec.session,
                                           plan_key=plan_key)
        except ValueError as exc:      # name collision / bad name
            self._reject(spec.tenant, "bad-spec")
            raise SpecError(str(exc)) from None

        ticket = Ticket(ticket_id=self._next_id, spec=spec,
                        session=session,
                        submitted_at=self.runtime.engine.now)
        self._next_id += 1
        try:
            if spec.workload is not None:
                from repro.workloads import make_workload
                kwargs: dict[str, object] = {"seed": spec.seed}
                if spec.n_chunks is not None:
                    kwargs["n_chunks"] = spec.n_chunks
                workload = make_workload(spec.workload,
                                         spec.footprint_bytes, **kwargs)
                workload.build(session)
                workload.run(session)
                ticket.workload = workload
                ticket.ce_count = workload.ce_count
                # Stamp the true completion instant: every CE's done
                # event exists already (the fair-share gate defers
                # execution, never event creation), so the last one to
                # fire leaves the session's finish time on the ticket —
                # latency stays exact no matter how rarely the owner
                # collects (the daemon only collects once per quantum).
                # The same callback counts the ticket's outstanding CEs
                # down and queues it for finalization at zero.
                engine = self.runtime.engine
                events = session.pending_events()
                ticket.pending = len(events)
                finished = self._finished

                def _note(_event, t=ticket, e=engine, f=finished):
                    t.pending -= 1
                    if not t.pending:
                        t.completed_at = e.now
                        f.append(t.ticket_id)

                for event in events:
                    event.callbacks.append(_note)
                if not events:
                    ticket.completed_at = engine.now
            else:
                # Manifests read results back inline, so they complete
                # (and advance simulated time) during submission.
                from repro.polyglot.manifest import run_manifest
                result = run_manifest(session, spec.manifest,
                                      seed=spec.seed)
                ticket.ce_count = result.ce_count
                ticket.completed_at = self.runtime.engine.now
        except Exception:
            session.close()
            self._reject(spec.tenant, "bad-spec")
            raise
        self._tickets[ticket.ticket_id] = ticket
        if ticket.pending == 0 and ticket.completed_at is not None:
            # Completed during submission (manifests run inline; a
            # workload may admit nothing) — queue for finalization.
            self._finished.append(ticket.ticket_id)
        self._accepted.labels(tenant=spec.tenant).inc()
        self._inflight.set(len(self._tickets))
        self.peak_inflight = max(self.peak_inflight, len(self._tickets))
        return ticket

    # -- progress --------------------------------------------------------------

    def pump(self, max_events: int = 1024) -> list[Ticket]:
        """Advance the shared simulation by up to ``max_events`` deliveries.

        The daemon's scheduling quantum: bounded, so the asyncio loop
        can interleave new submissions with simulation progress.
        Returns the tickets that completed (finalized, reports ready).
        """
        self.runtime.engine.run_steps(max_events)
        return self._collect()

    def settle(self, ticket: Ticket) -> dict:
        """Run one submission to completion; returns its run-report."""
        if not ticket.finalized:
            ticket.session.sync(timeout=ticket.spec.timeout)
            self._collect()
            if not ticket.finalized:   # drain cap hit: report as-is
                self._finalize(ticket, completed=False)
        assert ticket.report is not None
        return ticket.report

    def settle_all(self) -> list[dict]:
        """Run every open submission to completion, submission order."""
        return [self.settle(t) for t in list(self._tickets.values())]

    def _collect(self) -> list[Ticket]:
        if not self._finished:
            return []
        finished = []
        for ticket_id in self._finished:
            ticket = self._tickets.get(ticket_id)
            # Already finalized (drain-cap timeout) tickets fall out of
            # _tickets; a late countdown hit on one is a no-op.
            if ticket is not None and not ticket.finalized:
                finished.append(ticket)
        self._finished.clear()
        for ticket in finished:
            self._finalize(ticket, completed=True)
        return finished

    def _finalize(self, ticket: Ticket, *, completed: bool) -> None:
        if ticket.finalized:
            return
        now = self.runtime.engine.now
        if completed and ticket.completed_at is not None:
            now = ticket.completed_at
        latency = now - ticket.submitted_at
        self._latency.observe(latency)
        verified: bool | None = None
        if completed and ticket.workload is not None and ticket.spec.check:
            verified = bool(ticket.workload.verify())
        session_name = ticket.session.name
        ticket.session.close(timeout=0 if not completed else None)
        if completed:
            # Return the program's managed memory to the UVM spaces: a
            # persistent service otherwise accumulates every finished
            # session's bytes, driving the node OSF — and every later
            # tenant's modeled slowdown — monotonically upward.  A
            # drain-capped ticket still has CEs running against its
            # arrays, so only fully completed sessions reclaim.
            ticket.session.reclaim()
        del self._tickets[ticket.ticket_id]
        self._inflight.set(len(self._tickets))
        ticket.report = {
            "schema": SCHEMA,
            "ticket": ticket.ticket_id,
            "tenant": ticket.spec.tenant,
            "session": session_name,
            "workload": ticket.spec.kind,
            "footprint_bytes": ticket.spec.footprint_bytes,
            "ce_count": ticket.ce_count,
            "submitted_at": ticket.submitted_at,
            "finished_at": now,
            "latency_seconds": latency,
            "completed": completed,
            "verified": verified,
        }

    # -- introspection ----------------------------------------------------------

    def status(self) -> dict:
        """JSON-ready service snapshot (the daemon's ``/v1/status``)."""
        tenants: dict[str, int] = {}
        for ticket in self._tickets.values():
            tenants[ticket.spec.tenant] = \
                tenants.get(ticket.spec.tenant, 0) + 1
        return {
            "schema": SCHEMA,
            "closed": self._closed,
            "sim_now": self.runtime.engine.now,
            "inflight": len(self._tickets),
            "peak_inflight": self.peak_inflight,
            "tenants": tenants,
            "tenant_quota": self.tenant_quota,
            "max_sessions": self.max_sessions,
            "accepted_total": int(self._accepted.value_sum()),
            "rejected_total": int(self._rejected.value_sum()),
        }

    # -- teardown ----------------------------------------------------------------

    def close(self, *, settle: bool = True) -> None:
        """Stop admitting, optionally settle the tail, shut the runtime down."""
        if self._closed:
            return
        self._closed = True
        if settle:
            self.settle_all()
        self.runtime.shutdown()

    def __enter__(self) -> "GroutService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
