"""GrOUT-as-a-service — the serving surface over a persistent runtime.

The paper's transparency story culminates in multiplexing: many
programs, one shared cluster, no program aware of the others.  This
package turns PR 4's multi-program sessions into an actual service:

* :mod:`repro.serve.protocol` — the ``grout-serve/1`` wire schema:
  JSON workload specs in, JSON run-reports out;
* :mod:`repro.serve.service` — :class:`GroutService`, the
  transport-independent core (submit/pump/settle on one persistent
  :class:`~repro.core.runtime.GroutRuntime`, per-tenant quotas,
  ``grout_serve_*`` metrics);
* :mod:`repro.serve.daemon` — :class:`GroutDaemon`, the stdlib-asyncio
  HTTP front end behind ``grout serve`` (TCP or unix socket).
"""

from repro.serve.protocol import (SCHEMA, SpecError, WorkloadSpec)
from repro.serve.service import (GroutService, QuotaError, ServiceClosed,
                                 Ticket)
from repro.serve.daemon import GroutDaemon

__all__ = [
    "GroutDaemon",
    "GroutService",
    "QuotaError",
    "SCHEMA",
    "ServiceClosed",
    "SpecError",
    "Ticket",
    "WorkloadSpec",
]
