"""The ``grout-serve/1`` protocol: workload specs and run-reports.

A client submits one JSON **workload spec** per desired session.  Two
shapes are accepted:

* a *registry workload* — one of the paper suite by name, sized by
  footprint::

      {"workload": "mv", "gb": 0.25, "seed": 7, "tenant": "alice"}

* a *manifest* — the polyglot layer's language-agnostic program
  (arrays + CUDA C kernels + steps; see ``docs/API.md``)::

      {"manifest": {"arrays": [...], "kernels": [...], "program": [...]}}

The service answers with a ``grout-serve/1`` **run-report** per spec:
tenant, session, CE count, simulated submit-to-completion latency, and
the verification verdict (registry workloads check their numerics).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Mapping

from repro.gpu.specs import GIB, MIB

__all__ = ["SCHEMA", "SpecError", "WorkloadSpec"]

#: Wire schema identifier stamped on every serve run-report.
SCHEMA = "grout-serve/1"

#: Footprint used when a registry-workload spec names no size: small
#: enough that hundreds of concurrent sessions stay cheap to simulate.
DEFAULT_FOOTPRINT = 64 * MIB


class SpecError(ValueError):
    """Malformed or inconsistent workload spec (HTTP 400 territory)."""


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """One validated workload submission.

    Exactly one of ``workload`` (registry name) or ``manifest`` (inline
    polyglot program) is set.  ``tenant`` buckets the submission for
    quota enforcement and the per-tenant ``grout_serve_*`` metrics;
    ``session`` optionally pins the session name (must be unique among
    live sessions, else the runtime auto-names it).
    """

    tenant: str = "default"
    session: str | None = None
    workload: str | None = None
    footprint_bytes: int = DEFAULT_FOOTPRINT
    n_chunks: int | None = None
    seed: int = 0
    manifest: dict | None = None
    timeout: float | None = None          # simulated-seconds drain cap
    check: bool = True                    # verify registry numerics

    def __post_init__(self) -> None:
        if (self.workload is None) == (self.manifest is None):
            raise SpecError(
                "spec needs exactly one of 'workload' (registry name) "
                "or 'manifest' (inline program)")
        if self.workload is not None:
            from repro.workloads import WORKLOADS
            if self.workload not in WORKLOADS:
                raise SpecError(
                    f"unknown workload {self.workload!r}; pick one of "
                    f"{sorted(WORKLOADS)}")
        if self.footprint_bytes < 1:
            raise SpecError("footprint must be positive")
        if self.n_chunks is not None and self.n_chunks < 1:
            raise SpecError("n_chunks must be >= 1")
        if self.timeout is not None and self.timeout <= 0:
            raise SpecError("timeout must be positive")
        if not self.tenant:
            raise SpecError("tenant must be non-empty")

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "WorkloadSpec":
        """Parse one JSON-shaped spec; unknown keys raise :class:`SpecError`.

        ``gb`` is accepted as sugar for ``footprint_bytes`` (GiB float,
        matching the CLI's ``--gb``).
        """
        if not isinstance(payload, Mapping):
            raise SpecError(f"spec must be a JSON object, "
                            f"got {type(payload).__name__}")
        known = {f.name for f in fields(cls)}
        data = dict(payload)
        gb = data.pop("gb", None)
        unknown = set(data) - known
        if unknown:
            raise SpecError(f"unknown spec key(s): {sorted(unknown)}")
        if gb is not None:
            if "footprint_bytes" in data:
                raise SpecError("give either 'gb' or 'footprint_bytes', "
                                "not both")
            try:
                data["footprint_bytes"] = int(float(gb) * GIB)
            except (TypeError, ValueError):
                raise SpecError(f"'gb' must be a number, got {gb!r}") \
                    from None
        try:
            return cls(**data)
        except TypeError as exc:
            raise SpecError(str(exc)) from None

    def as_dict(self) -> dict[str, object]:
        """JSON shape of the spec (defaults included)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def kind(self) -> str:
        """``"manifest"`` or the registry workload's name."""
        return self.workload if self.workload is not None else "manifest"
