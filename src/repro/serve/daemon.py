"""GroutDaemon — the stdlib-asyncio HTTP front end of ``grout serve``.

One process, one event loop, one shared :class:`GroutService`: requests
are parsed from asyncio streams (a deliberately minimal HTTP/1.1
subset — no external dependencies), submissions enqueue onto the
persistent runtime, and a single *pump task* advances simulated time in
bounded quanta whenever work is in flight, resolving each request's
future as its session completes.  Hundreds of concurrent connections
therefore multiplex onto one cooperative simulation.

Endpoints::

    GET  /healthz      -> {"status": "ok"}
    GET  /v1/status    -> service snapshot (inflight, quotas, clock)
    GET  /metrics      -> Prometheus text (the full grout_* catalogue)
    POST /v1/run       -> body: one workload spec; replies with the
                          grout-serve/1 run-report when the workload's
                          last CE completes
    POST /v1/shutdown  -> drain, stop accepting, exit cleanly

Listens on TCP (``host``/``port``) or a unix socket (``path``).
"""

from __future__ import annotations

import asyncio
import json

from repro.serve.protocol import SpecError
from repro.serve.service import (GroutService, QuotaError, ServiceClosed,
                                 Ticket)

__all__ = ["GroutDaemon"]

#: Engine deliveries per pump quantum — small enough that the loop
#: stays responsive to new connections, large enough to amortise the
#: task switch.
PUMP_QUANTUM = 2048

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            429: "Too Many Requests", 503: "Service Unavailable"}

MAX_BODY = 8 * 1024 * 1024


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class GroutDaemon:
    """Serve one :class:`GroutService` over HTTP (TCP or unix socket)."""

    def __init__(self, service: GroutService, *,
                 host: str = "127.0.0.1", port: int = 0,
                 path: str | None = None):
        self.service = service
        self.host = host
        self.port = port
        self.path = path
        self.address: str | None = None    # filled once bound
        self._server: asyncio.AbstractServer | None = None
        self._stop = asyncio.Event()
        self._work = asyncio.Event()       # set while tickets are open
        self._waiters: dict[int, asyncio.Future] = {}

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> str:
        """Bind, start the pump task, return the listening address."""
        if self.path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle, path=self.path)
            self.address = f"unix:{self.path}"
        else:
            self._server = await asyncio.start_server(
                self._handle, host=self.host, port=self.port)
            sock = self._server.sockets[0]
            bound_host, bound_port = sock.getsockname()[:2]
            self.port = bound_port
            self.address = f"http://{bound_host}:{bound_port}"
        self._pump_task = asyncio.ensure_future(self._pump())
        return self.address

    async def run(self) -> None:
        """Start, serve until :meth:`stop` (or POST /v1/shutdown), clean up.

        Safe to call after an explicit :meth:`start` (e.g. to print the
        bound address first) — it will not bind twice.
        """
        if self._server is None:
            await self.start()
        try:
            await self._stop.wait()
        finally:
            assert self._server is not None
            self._server.close()
            await self._server.wait_closed()
            self._work.set()               # unblock the pump for exit
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
            self.service.close()

    def stop(self) -> None:
        """Request a clean exit of :meth:`run`."""
        self._stop.set()

    # -- the pump ----------------------------------------------------------------

    async def _pump(self) -> None:
        """Advance the shared simulation while submissions are in flight."""
        while not self._stop.is_set():
            await self._work.wait()
            if self._stop.is_set():
                return
            finished = self.service.pump(PUMP_QUANTUM)
            self._resolve(finished)
            if not self.service.inflight():
                self._work.clear()
            # Yield so connection handlers run between quanta.
            await asyncio.sleep(0)

    def _resolve(self, finished: list[Ticket]) -> None:
        for ticket in finished:
            future = self._waiters.pop(ticket.ticket_id, None)
            if future is not None and not future.done():
                future.set_result(ticket.report)

    async def _await_ticket(self, ticket: Ticket) -> dict:
        if ticket.finalized:               # e.g. manifests run inline
            assert ticket.report is not None
            return ticket.report
        future: asyncio.Future = asyncio.get_event_loop().create_future()
        self._waiters[ticket.ticket_id] = future
        self._work.set()
        return await future

    # -- HTTP --------------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, target, body = await self._read_request(reader)
                status, payload = await self._route(method, target, body)
            except _HttpError as exc:
                status, payload = exc.status, {"error": str(exc)}
            await self._respond(writer, status, payload)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> tuple[str, str, bytes]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise _HttpError(400, "malformed request line")
        method, target = parts[0].upper(), parts[1]
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise _HttpError(400, "bad Content-Length") from None
        if length > MAX_BODY:
            raise _HttpError(413, f"body over {MAX_BODY} bytes")
        body = await reader.readexactly(length) if length else b""
        return method, target, body

    async def _route(self, method: str, target: str, body: bytes
                     ) -> tuple[int, dict | str]:
        target = target.split("?", 1)[0]
        if target == "/healthz" and method == "GET":
            return 200, {"status": "ok"}
        if target == "/v1/status" and method == "GET":
            return 200, self.service.status()
        if target == "/metrics" and method == "GET":
            from repro.obs import to_prometheus_text
            return 200, to_prometheus_text(self.service.runtime.metrics)
        if target == "/v1/run" and method == "POST":
            try:
                payload = json.loads(body.decode("utf-8") or "null")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise _HttpError(400, f"invalid JSON body: {exc}") \
                    from None
            try:
                ticket = self.service.submit(payload)
            except SpecError as exc:
                raise _HttpError(400, str(exc)) from None
            except QuotaError as exc:
                raise _HttpError(429, str(exc)) from None
            except ServiceClosed as exc:
                raise _HttpError(503, str(exc)) from None
            return 200, await self._await_ticket(ticket)
        if target == "/v1/shutdown" and method == "POST":
            # Reply first, then wind down: settle the tail, stop the
            # listener, let run() shut the runtime down.
            asyncio.get_event_loop().call_soon(self.stop)
            return 200, {"status": "shutting-down",
                         "inflight": self.service.inflight()}
        if target in ("/healthz", "/v1/status", "/metrics", "/v1/run",
                      "/v1/shutdown"):
            raise _HttpError(405, f"{method} not allowed on {target}")
        raise _HttpError(404, f"no route for {target}")

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: dict | str) -> None:
        if isinstance(payload, str):
            content_type = "text/plain; version=0.0.4; charset=utf-8"
            body = payload.encode("utf-8")
        else:
            content_type = "application/json"
            body = json.dumps(payload).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n")
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
