"""Polyglot API emulation (GraalVM/Truffle substitute).

Gives GrOUT/GrCUDA the exact call surface of the paper's Listing 1 — string
kernels built at runtime, array-type expressions, ``kernel(grid, block)(…)``
launches — without a JVM underneath.
"""

from repro.polyglot.api import (
    DeviceArrayView,
    GrCUDA,
    GrOUT,
    Polyglot,
    PolyglotError,
    PolyglotKernel,
    polyglot,
)
from repro.polyglot.manifest import (
    ManifestError,
    ManifestResult,
    load_manifest,
    run_manifest,
)
from repro.polyglot.kernelc import (
    KernelAst,
    KernelInterpreter,
    KernelSyntaxError,
    parse_kernel,
)
from repro.polyglot.types import (
    DTYPE_MAP,
    SignatureParam,
    TypeSyntaxError,
    is_array_type,
    parse_array_type,
    parse_signature,
)

__all__ = [
    "DTYPE_MAP",
    "DeviceArrayView",
    "GrCUDA",
    "GrOUT",
    "KernelAst",
    "KernelInterpreter",
    "KernelSyntaxError",
    "ManifestError",
    "ManifestResult",
    "Polyglot",
    "PolyglotError",
    "PolyglotKernel",
    "SignatureParam",
    "TypeSyntaxError",
    "is_array_type",
    "load_manifest",
    "parse_array_type",
    "parse_kernel",
    "parse_signature",
    "polyglot",
    "run_manifest",
]
