"""The polyglot type DSL: ``polyglot.eval(GrOUT, "float[100]")``.

Parses GrCUDA/GrOUT array-type expressions into NumPy dtypes and shapes,
and NIDL-style kernel signatures into per-parameter directions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.gpu.kernel import Direction

#: CUDA C scalar type -> NumPy dtype.
DTYPE_MAP: dict[str, np.dtype] = {
    "bool": np.dtype(np.bool_),
    "char": np.dtype(np.int8),
    "sint8": np.dtype(np.int8),
    "uint8": np.dtype(np.uint8),
    "short": np.dtype(np.int16),
    "sint16": np.dtype(np.int16),
    "uint16": np.dtype(np.uint16),
    "int": np.dtype(np.int32),
    "sint32": np.dtype(np.int32),
    "uint32": np.dtype(np.uint32),
    "long": np.dtype(np.int64),
    "sint64": np.dtype(np.int64),
    "uint64": np.dtype(np.uint64),
    "float": np.dtype(np.float32),
    "double": np.dtype(np.float64),
}

_ARRAY_RE = re.compile(
    r"^\s*(?P<type>[a-zA-Z_]\w*)\s*(?P<dims>(\[\s*\d+\s*\])+)\s*$")
_DIM_RE = re.compile(r"\[\s*(\d+)\s*\]")


class TypeSyntaxError(ValueError):
    """Raised on malformed type or signature expressions."""


def parse_array_type(expr: str) -> tuple[np.dtype, tuple[int, ...]]:
    """Parse ``"float[100]"`` / ``"double[10][20]"`` into (dtype, shape)."""
    m = _ARRAY_RE.match(expr)
    if m is None:
        raise TypeSyntaxError(f"not an array type expression: {expr!r}")
    type_name = m.group("type")
    dtype = DTYPE_MAP.get(type_name)
    if dtype is None:
        raise TypeSyntaxError(f"unknown element type {type_name!r}")
    shape = tuple(int(d) for d in _DIM_RE.findall(m.group("dims")))
    if any(d <= 0 for d in shape):
        raise TypeSyntaxError(f"array dims must be positive in {expr!r}")
    return dtype, shape


def is_array_type(expr: str) -> bool:
    """Whether the string looks like an array-type expression."""
    return _ARRAY_RE.match(expr) is not None


@dataclass(frozen=True, slots=True)
class SignatureParam:
    """One parameter of a NIDL kernel signature."""

    name: str
    direction: Direction | None    # None for scalars
    is_pointer: bool
    type_name: str


_SIG_RE = re.compile(r"^\s*(?P<kernel>[a-zA-Z_]\w*)\s*\((?P<params>.*)\)\s*$",
                     re.DOTALL)


def parse_signature(signature: str) -> tuple[str, list[SignatureParam]]:
    """Parse a GrCUDA-style NIDL signature.

    Accepted forms per parameter (comma separated)::

        x: inout pointer float     # named form
        const pointer float        # anonymous form (direction from const)
        n: sint32                  # scalar

    Directions: ``in``/``const`` (read), ``out`` (write), ``inout``.
    """
    m = _SIG_RE.match(signature)
    if m is None:
        raise TypeSyntaxError(f"malformed signature {signature!r}")
    kernel_name = m.group("kernel")
    params: list[SignatureParam] = []
    body = m.group("params").strip()
    if not body:
        return kernel_name, params
    for i, raw in enumerate(body.split(",")):
        raw = raw.strip()
        if ":" in raw:
            name, spec = (part.strip() for part in raw.split(":", 1))
        else:
            name, spec = f"arg{i}", raw
        words = spec.split()
        if not words:
            raise TypeSyntaxError(f"empty parameter spec in {signature!r}")
        direction: Direction | None = None
        is_pointer = "pointer" in words
        if is_pointer:
            if "inout" in words:
                direction = Direction.INOUT
            elif "out" in words:
                direction = Direction.OUT
            elif "in" in words or "const" in words:
                direction = Direction.IN
            else:
                direction = Direction.INOUT   # GrCUDA's safe default
        type_name = words[-1]
        if type_name in ("pointer", "in", "out", "inout", "const"):
            raise TypeSyntaxError(
                f"parameter {name!r} is missing an element type")
        if type_name not in DTYPE_MAP:
            raise TypeSyntaxError(f"unknown element type {type_name!r} "
                                  f"for parameter {name!r}")
        params.append(SignatureParam(name, direction, is_pointer, type_name))
    return kernel_name, params
