"""The polyglot surface of Listing 1/2.

Mirrors GraalVM's ``polyglot`` module closely enough that the paper's
minimal example runs verbatim (modulo the import path)::

    from repro.polyglot import polyglot, GrOUT
    build = polyglot.eval(GrOUT, "buildkernel")
    square = build(KERNEL, KERNEL_SIGNATURE)
    x = polyglot.eval(GrOUT, "float[100]")
    for i in range(100):
        x[i] = i
    square(GRID_SIZE, BLOCK_SIZE)(x, 100)
    print(x[3])

and the Listing 2 claim — moving a workload from GrCUDA to GrOUT is a
one-token language change — holds by construction because both languages
dispatch to runtimes with identical surfaces.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.gpu.kernel import AccessPattern, ArrayAccess, Direction, KernelSpec
from repro.core.arrays import ManagedArray
from repro.core.ce import ComputationalElement
from repro.polyglot.kernelc import KernelAst, KernelInterpreter, parse_kernel
from repro.polyglot.types import (
    TypeSyntaxError,
    is_array_type,
    parse_array_type,
    parse_signature,
)

#: Language identifiers, mirroring the paper's constants.
GrOUT = "grout"
GrCUDA = "grcuda"


class PolyglotError(RuntimeError):
    """Raised on polyglot-level misuse (no runtime bound, bad code string)."""


class DeviceArrayView:
    """User-facing handle of a UVM array with host read/write semantics.

    Element access behaves like UVM from host code: reads synchronise with
    pending device work touching the array; writes first synchronise, then
    mutate the backing, and are published to the DAG right before the next
    kernel launch that uses the array.
    """

    def __init__(self, runtime, array: ManagedArray):
        self._runtime = runtime
        self._array = array
        self._needs_sync = False     # device work since last host sync
        self._host_dirty = False     # host writes not yet published

    # -- plumbing used by PolyglotKernel -----------------------------------

    @property
    def array(self) -> ManagedArray:
        """The underlying managed array."""
        return self._array

    @property
    def nbytes(self) -> int:
        """Modeled bytes of the underlying array."""
        return self._array.nbytes

    def _sync_for_host(self, for_write: bool = False) -> None:
        if not self._needs_sync:
            return
        self._runtime.host_read(self._array)
        if for_write:
            # In-place mutation must additionally wait for pending
            # *readers* (WAR): a queued kernel must not see the new value.
            self._runtime.host_barrier(self._array)
        self._needs_sync = False

    def _flush_host_writes(self) -> None:
        """Publish buffered host writes as one HOST_WRITE CE."""
        if self._host_dirty:
            self._runtime.host_write(self._array)
            self._host_dirty = False

    def _mark_device_use(self) -> None:
        self._needs_sync = True

    # -- host-side accessors ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._array)

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the backing array."""
        return self._array.shape

    def __getitem__(self, key):
        self._sync_for_host()
        value = self._array.data[key]
        if isinstance(value, np.generic):
            return value.item()       # plain Python scalar, like GraalVM
        return value

    def __setitem__(self, key, value) -> None:
        self._sync_for_host(for_write=True)
        self._array.data[key] = value
        self._host_dirty = True

    def __iter__(self):
        self._sync_for_host()
        return iter(self._array.data)

    def to_numpy(self) -> np.ndarray:
        """Synchronised copy of the array contents."""
        self._sync_for_host()
        return self._array.data.copy()

    def __repr__(self) -> str:
        self._sync_for_host()
        return repr(self._array.data)


class PolyglotKernel:
    """A built kernel: call as ``kernel(grid, block)(*args)`` (Listing 1)."""

    def __init__(self, runtime, ast: KernelAst, signature: str | None = None):
        self._runtime = runtime
        self._ast = ast
        self._interpreter = KernelInterpreter(ast)
        self._directions = self._resolve_directions(ast, signature)
        self._spec = KernelSpec(
            name=ast.name,
            source=None,
            flops_per_byte=0.0,   # flops_fn below supersedes this
        )

    @property
    def name(self) -> str:
        """The kernel's symbol name."""
        return self._ast.name

    @staticmethod
    def _resolve_directions(ast: KernelAst,
                            signature: str | None) -> dict[str, Direction]:
        """Per-pointer-param direction: explicit signature wins, else the
        parser's read/write analysis, else const-ness."""
        directions: dict[str, Direction] = {}
        for p in ast.params:
            if not p.is_pointer:
                continue
            reads = p.name in ast.reads
            writes = p.name in ast.writes
            if writes and reads:
                directions[p.name] = Direction.INOUT
            elif writes:
                directions[p.name] = Direction.OUT
            elif reads:
                directions[p.name] = Direction.IN
            else:
                directions[p.name] = (Direction.IN if p.is_const
                                      else Direction.INOUT)
        if signature is not None:
            sig_name, sig_params = parse_signature(signature)
            if sig_name != ast.name:
                raise PolyglotError(
                    f"signature is for {sig_name!r} but the source defines "
                    f"{ast.name!r}")
            if len(sig_params) != len(ast.params):
                raise PolyglotError(
                    f"signature has {len(sig_params)} parameters, source "
                    f"has {len(ast.params)}")
            for sp, p in zip(sig_params, ast.params):
                if sp.is_pointer != p.is_pointer:
                    raise PolyglotError(
                        f"pointer mismatch for parameter {p.name!r}")
                if sp.direction is not None:
                    directions[p.name] = sp.direction
        return directions

    def __call__(self, grid: int | tuple[int, ...],
                 block: int | tuple[int, ...]):
        """Bind the execution configuration; returns the launcher."""

        def launcher(*args: object) -> ComputationalElement:
            if len(args) != len(self._ast.params):
                raise TypeError(
                    f"kernel {self._ast.name!r} expects "
                    f"{len(self._ast.params)} arguments, got {len(args)}")
            unwrapped: list[object] = []
            views: list[DeviceArrayView] = []
            accesses: list[ArrayAccess] = []
            for param, arg in zip(self._ast.params, args):
                if param.is_pointer:
                    if isinstance(arg, DeviceArrayView):
                        view, array = arg, arg.array
                        views.append(view)
                        view._flush_host_writes()
                    elif isinstance(arg, ManagedArray):
                        view, array = None, arg
                    else:
                        raise TypeError(
                            f"pointer parameter {param.name!r} needs a "
                            f"device array, got {type(arg).__name__}")
                    pattern = (AccessPattern.RANDOM
                               if param.name in self._ast.gathers
                               else AccessPattern.SEQUENTIAL)
                    accesses.append(ArrayAccess(
                        array, self._directions[param.name], pattern))
                    unwrapped.append(array)
                else:
                    unwrapped.append(arg)

            grid_t = grid if isinstance(grid, tuple) else (int(grid),)
            block_t = block if isinstance(block, tuple) else (int(block),)
            total_threads = int(np.prod(grid_t)) * int(np.prod(block_t))
            flops = self._ast.flops_per_thread * total_threads
            interpreter = self._interpreter

            def executor(*exec_args: object) -> None:
                interpreter.run(grid_t, block_t, tuple(exec_args))

            spec = dataclasses.replace(
                self._spec, executor=executor,
                flops_fn=lambda _args: flops)
            ce = self._runtime.launch(spec, grid_t, block_t,
                                      tuple(unwrapped), accesses=accesses)
            for view in views:
                view._mark_device_use()
            return ce

        return launcher


class _BuildKernel:
    """The callable ``polyglot.eval(GrOUT, "buildkernel")`` returns."""

    def __init__(self, runtime):
        self._runtime = runtime

    def __call__(self, source: str,
                 signature: str | None = None) -> PolyglotKernel:
        ast = parse_kernel(source)
        return PolyglotKernel(self._runtime, ast, signature)


class Polyglot:
    """The ``polyglot`` module surface: bind runtimes, evaluate code."""

    def __init__(self) -> None:
        self._runtimes: dict[str, object] = {}

    def bind(self, language: str, runtime) -> None:
        """Associate a language id (GrOUT/GrCUDA) with a runtime instance.

        Anything exposing the runtime surface works — a
        :class:`~repro.core.runtime.GroutRuntime`, a
        :class:`~repro.core.grcuda.GrCudaRuntime`, or a multi-program
        :class:`~repro.core.session.Session` (so N polyglot programs can
        share one cluster, each bound through its own ``Polyglot``
        instance).
        """
        self._runtimes[language] = runtime

    def runtime(self, language: str):
        """The runtime bound to a language id (raises if unbound)."""
        rt = self._runtimes.get(language)
        if rt is None:
            raise PolyglotError(
                f"no runtime bound for language {language!r}; call "
                "polyglot.bind(language, runtime) first")
        return rt

    def eval(self, language: str, code: str):
        """Evaluate a GrOUT/GrCUDA code string.

        ``"buildkernel"`` returns the kernel builder; an array type
        expression (``"float[100]"``) allocates a managed array.
        """
        rt = self.runtime(language)
        code = code.strip()
        if code == "buildkernel":
            return _BuildKernel(rt)
        if is_array_type(code):
            dtype, shape = parse_array_type(code)
            array = rt.device_array(shape, dtype)
            return DeviceArrayView(rt, array)
        raise PolyglotError(
            f"cannot evaluate {code!r}: expected 'buildkernel' or an array "
            "type like 'float[100]'")


#: Module-level instance, used exactly like GraalVM's ``import polyglot``.
polyglot = Polyglot()
