"""Language-agnostic workload manifests.

The paper's GrOUT is reachable from "all of the major programming
languages" through GraalVM's polyglot interop.  Outside a JVM the
portable equivalent is a declarative interface: any language that can
emit JSON can drive the runtime through a **manifest** — arrays, kernels
(CUDA C source strings, exactly like ``buildkernel``), and a program of
write/launch/prefetch/read steps.

Example manifest::

    {
      "arrays":  [{"name": "x", "type": "float[1024]"}],
      "kernels": [{"name": "square",
                   "source": "__global__ void square(float* x, int n){...}",
                   "signature": "square(x: inout pointer float, n: sint32)"}],
      "program": [
        {"op": "write",  "array": "x", "fill": "arange"},
        {"op": "launch", "kernel": "square", "grid": 8, "block": 128,
         "args": ["x", 1024]},
        {"op": "read",   "array": "x", "as": "result"}
      ]
    }

``run_manifest`` executes it on any runtime (GrOUT or GrCUDA — the
Listing 2 property holds here too) and returns the values read back.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.polyglot.api import DeviceArrayView, _BuildKernel
from repro.polyglot.types import parse_array_type

#: Supported host-side initialisers for "write" steps.
FILLS = {
    "zeros": lambda n, rng: np.zeros(n),
    "ones": lambda n, rng: np.ones(n),
    "arange": lambda n, rng: np.arange(n),
    "random": lambda n, rng: rng.random(n),
    "normal": lambda n, rng: rng.standard_normal(n),
}


class ManifestError(ValueError):
    """Raised on malformed or inconsistent manifests."""


@dataclass(slots=True)
class ManifestResult:
    """Outcome of one manifest execution."""

    reads: dict[str, np.ndarray] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    ce_count: int = 0


def _require(mapping: dict, key: str, context: str):
    try:
        return mapping[key]
    except KeyError:
        raise ManifestError(f"{context} is missing the {key!r} field") \
            from None


def load_manifest(source: "str | dict") -> dict:
    """Parse and structurally validate a manifest (JSON string or dict)."""
    if isinstance(source, str):
        try:
            manifest = json.loads(source)
        except json.JSONDecodeError as exc:
            raise ManifestError(f"manifest is not valid JSON: {exc}") \
                from None
    else:
        manifest = source
    if not isinstance(manifest, dict):
        raise ManifestError("manifest must be a JSON object")
    for section in ("arrays", "program"):
        if not isinstance(manifest.get(section), list):
            raise ManifestError(f"manifest needs a {section!r} list")
    manifest.setdefault("kernels", [])
    names = [_require(a, "name", "array entry")
             for a in manifest["arrays"]]
    if len(set(names)) != len(names):
        raise ManifestError("duplicate array names in manifest")
    return manifest


def run_manifest(runtime, source: "str | dict", *,
                 seed: int = 0) -> ManifestResult:
    """Execute a manifest on any runtime; returns the read-back values."""
    manifest = load_manifest(source)
    rng = np.random.default_rng(seed)
    result = ManifestResult()

    views: dict[str, DeviceArrayView] = {}
    for entry in manifest["arrays"]:
        name = entry["name"]
        dtype, shape = parse_array_type(
            _require(entry, "type", f"array {name!r}"))
        virtual = entry.get("virtual_bytes")
        array = runtime.device_array(
            shape, dtype, virtual_nbytes=virtual, name=name)
        views[name] = DeviceArrayView(runtime, array)

    build = _BuildKernel(runtime)
    kernels = {}
    for entry in manifest["kernels"]:
        name = _require(entry, "name", "kernel entry")
        kernel = build(_require(entry, "source", f"kernel {name!r}"),
                       entry.get("signature"))
        if kernel.name != name:
            raise ManifestError(
                f"kernel entry {name!r} defines source for "
                f"{kernel.name!r}")
        kernels[name] = kernel

    def view(name: str) -> DeviceArrayView:
        try:
            return views[name]
        except KeyError:
            raise ManifestError(f"unknown array {name!r}") from None

    start = runtime.elapsed
    for i, step in enumerate(manifest["program"]):
        op = _require(step, "op", f"program step {i}")
        if op == "write":
            target = view(_require(step, "array", f"step {i}"))
            fill = step.get("fill", "zeros")
            if fill not in FILLS:
                raise ManifestError(
                    f"step {i}: unknown fill {fill!r}; "
                    f"choose from {sorted(FILLS)}")
            data = FILLS[fill](np.prod(target.shape), rng) \
                .reshape(target.shape)
            target[...] = data.astype(target.array.dtype)
            result.ce_count += 1
        elif op == "launch":
            kernel_name = _require(step, "kernel", f"step {i}")
            kernel = kernels.get(kernel_name)
            if kernel is None:
                raise ManifestError(
                    f"step {i}: unknown kernel {kernel_name!r}")
            args = [views[a] if isinstance(a, str) and a in views else a
                    for a in step.get("args", [])]
            launcher = kernel(int(_require(step, "grid", f"step {i}")),
                              int(_require(step, "block", f"step {i}")))
            launcher(*args)
            result.ce_count += 1
        elif op == "prefetch":
            target = view(_require(step, "array", f"step {i}"))
            prefetch = getattr(runtime, "prefetch", None)
            if prefetch is None:
                raise ManifestError(
                    f"step {i}: runtime does not support prefetch")
            prefetch(target.array)
            result.ce_count += 1
        elif op == "read":
            name = _require(step, "array", f"step {i}")
            key = step.get("as", name)
            result.reads[key] = view(name).to_numpy()
        elif op == "sync":
            runtime.sync()
        else:
            raise ManifestError(f"step {i}: unknown op {op!r}")

    runtime.sync()
    result.elapsed_seconds = runtime.elapsed - start
    return result
