"""A restricted CUDA C kernel front-end (the NVRTC substitute).

GrOUT's ``buildkernel`` hands a CUDA C++ source string to NVRTC at runtime;
here the same string is parsed into an AST and *compiled* to a vectorised
NumPy executor that runs the kernel SPMD-style: the global thread index is
an array, per-thread variables are arrays, divergent ``if`` bodies execute
under boolean masks.  Numerical results are therefore exact, and the parser
also derives the memory-access descriptors (direction per pointer
parameter, sequential vs. gather/scatter pattern) and a per-element FLOP
estimate that feed the UVM cost model.

Supported subset — enough for the paper's workload suite and examples:

* signature: ``extern "C" __global__ void name(const float* x, int n, …)``
* statements: declarations, (compound) assignments, ``if``/``else``,
  uniform-bound ``for``, bare ``return`` (thread guard)
* expressions: arithmetic, comparisons, logicals, ternary, array indexing,
  ``threadIdx/blockIdx/blockDim/gridDim`` (``.x`` only), calls to a math
  whitelist, ``atomicAdd(&target, value)``
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from scipy import special as _sp_special


class KernelSyntaxError(ValueError):
    """Raised when a kernel source leaves the supported subset."""


# --------------------------------------------------------------------------
# Tokenizer
# --------------------------------------------------------------------------

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+|//[^\n]*|/\*.*?\*/|"[^"]*")
  | (?P<num>0[xX][0-9a-fA-F]+|(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?[fF]?)
  | (?P<name>[A-Za-z_]\w*)
  | (?P<op><<=|>>=|\+\+|--|\+=|-=|\*=|/=|%=|==|!=|<=|>=|&&|\|\||<<|>>|[-+*/%<>=!&|^~?:;,.()\[\]{}])
""", re.VERBOSE | re.DOTALL)


@dataclass(frozen=True, slots=True)
class Token:
    kind: str      # "num" | "name" | "op"
    text: str
    pos: int


def tokenize(source: str) -> list[Token]:
    """Split kernel source into tokens (comments/strings dropped)."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise KernelSyntaxError(
                f"unexpected character {source[pos]!r} at offset {pos}")
        pos = m.end()
        kind = m.lastgroup
        if kind == "ws":
            continue
        assert kind is not None
        tokens.append(Token(kind, m.group(), m.start()))
    return tokens


# --------------------------------------------------------------------------
# AST
# --------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Num:
    value: float
    is_int: bool


@dataclass(frozen=True, slots=True)
class Var:
    name: str


@dataclass(frozen=True, slots=True)
class Builtin:
    name: str           # "threadIdx" | "blockIdx" | "blockDim" | "gridDim"


@dataclass(frozen=True, slots=True)
class Index:
    base: str
    index: object       # expression


@dataclass(frozen=True, slots=True)
class Unary:
    op: str
    operand: object


@dataclass(frozen=True, slots=True)
class Binary:
    op: str
    left: object
    right: object


@dataclass(frozen=True, slots=True)
class Ternary:
    cond: object
    if_true: object
    if_false: object


@dataclass(frozen=True, slots=True)
class Call:
    func: str
    args: tuple


@dataclass(frozen=True, slots=True)
class Decl:
    type: str
    name: str
    init: object | None


@dataclass(frozen=True, slots=True)
class Assign:
    target: object      # Var or Index
    op: str             # "=", "+=", ...
    value: object


@dataclass(frozen=True, slots=True)
class AtomicAdd:
    target: Index
    value: object


@dataclass(frozen=True, slots=True)
class If:
    cond: object
    then: tuple
    orelse: tuple


@dataclass(frozen=True, slots=True)
class For:
    init: object        # Decl or Assign
    cond: object
    step: Assign
    body: tuple


@dataclass(frozen=True, slots=True)
class While:
    cond: object
    body: tuple


@dataclass(frozen=True, slots=True)
class Return:
    value: object | None = None    # expression in __device__ functions


@dataclass(frozen=True, slots=True)
class Param:
    type: str
    name: str
    is_pointer: bool
    is_const: bool


@dataclass(frozen=True, slots=True)
class DeviceFunction:
    """A ``__device__`` helper: pure scalar function, inlined at call time.

    Restrictions (checked at parse time): scalar parameters only, and the
    single ``return <expr>;`` must be the final statement — divergent
    early returns with values are out of the supported subset.
    """

    name: str
    params: tuple[Param, ...]
    body: tuple                  # statements, last is Return(expr)
    flops: float = 0.0


@dataclass(slots=True)
class KernelAst:
    name: str
    params: list[Param]
    body: tuple
    reads: set[str] = field(default_factory=set)     # pointer params read
    writes: set[str] = field(default_factory=set)    # pointer params written
    gathers: set[str] = field(default_factory=set)   # indexed via other data
    flops_per_thread: float = 0.0
    device_functions: dict[str, DeviceFunction] = field(
        default_factory=dict)


_TYPES = {"float", "double", "int", "long", "unsigned", "size_t", "bool",
          "char", "short"}
_FLOP_OPS = {"+": 1, "-": 1, "*": 1, "/": 4, "%": 4}
_FUNC_FLOPS = {"exp": 10, "expf": 10, "log": 10, "logf": 10, "sqrt": 5,
               "sqrtf": 5, "fabs": 1, "fabsf": 1, "pow": 15, "powf": 15,
               "erf": 12, "erff": 12, "fmax": 1, "fmaxf": 1, "fmin": 1,
               "fminf": 1, "sin": 10, "sinf": 10, "cos": 10, "cosf": 10,
               "tanh": 12, "tanhf": 12, "floor": 1, "ceil": 1,
               "normcdf": 15, "normcdff": 15, "min": 1, "max": 1,
               "abs": 1}


class _Parser:
    """Recursive-descent parser for the kernel subset."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.i = 0

    # -- cursor helpers -------------------------------------------------------

    def peek(self, offset: int = 0) -> Token | None:
        j = self.i + offset
        return self.tokens[j] if j < len(self.tokens) else None

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            raise KernelSyntaxError("unexpected end of kernel source")
        self.i += 1
        return tok

    def expect(self, text: str) -> Token:
        tok = self.next()
        if tok.text != text:
            raise KernelSyntaxError(
                f"expected {text!r}, got {tok.text!r} at offset {tok.pos}")
        return tok

    def accept(self, text: str) -> bool:
        tok = self.peek()
        if tok is not None and tok.text == text:
            self.i += 1
            return True
        return False

    # -- kernel & params -------------------------------------------------------

    def parse_kernel(self) -> KernelAst:
        """Parse a translation unit: __device__ helpers + one __global__."""
        device_fns: dict[str, DeviceFunction] = {}
        kernel: KernelAst | None = None
        while self.peek() is not None:
            # optional: extern "C" (string literal dropped as whitespace)
            self.accept("extern")
            tok = self.peek()
            if tok is None:
                break
            if tok.text == "__device__":
                fn = self._parse_device_function()
                device_fns[fn.name] = fn
            elif tok.text == "__global__":
                if kernel is not None:
                    raise KernelSyntaxError(
                        "only one __global__ kernel per source is "
                        "supported")
                kernel = self._parse_global()
            else:
                raise KernelSyntaxError(
                    f"expected __device__ or __global__, got {tok.text!r}")
        if kernel is None:
            raise KernelSyntaxError("source defines no __global__ kernel")
        kernel.device_functions = device_fns
        return kernel

    def _parse_global(self) -> KernelAst:
        self.expect("__global__")
        self.expect("void")
        name = self.next()
        if name.kind != "name":
            raise KernelSyntaxError(f"expected kernel name, got {name.text!r}")
        self.expect("(")
        params: list[Param] = []
        if not self.accept(")"):
            while True:
                params.append(self._parse_param())
                if self.accept(")"):
                    break
                self.expect(",")
        body = self._parse_block()
        return KernelAst(name=name.text, params=params, body=body)

    def _parse_device_function(self) -> DeviceFunction:
        self.expect("__device__")
        ret_type = self.next()
        if ret_type.text not in _TYPES:
            raise KernelSyntaxError(
                f"__device__ functions must return a scalar type, got "
                f"{ret_type.text!r}")
        name = self.next()
        if name.kind != "name":
            raise KernelSyntaxError(
                f"expected function name, got {name.text!r}")
        self.expect("(")
        params: list[Param] = []
        if not self.accept(")"):
            while True:
                param = self._parse_param()
                if param.is_pointer:
                    raise KernelSyntaxError(
                        f"__device__ function {name.text!r}: pointer "
                        "parameters are not supported")
                params.append(param)
                if self.accept(")"):
                    break
                self.expect(",")
        body = self._parse_block()
        _validate_device_body(name.text, body)
        return DeviceFunction(name=name.text, params=tuple(params),
                              body=body,
                              flops=_device_fn_flops(body))

    def _parse_param(self) -> Param:
        is_const = self.accept("const")
        type_tok = self.next()
        if type_tok.text not in _TYPES:
            raise KernelSyntaxError(f"unsupported type {type_tok.text!r}")
        # allow "unsigned int", "long long"
        while self.peek() is not None and self.peek().text in _TYPES:  # type: ignore[union-attr]
            self.next()
        is_pointer = False
        while self.accept("*"):
            is_pointer = True
        if self.accept("const"):
            is_const = True
        if self.accept("__restrict__"):
            pass
        name_tok = self.next()
        if name_tok.kind != "name":
            raise KernelSyntaxError(
                f"expected parameter name, got {name_tok.text!r}")
        return Param(type_tok.text, name_tok.text, is_pointer, is_const)

    # -- statements --------------------------------------------------------------

    def _parse_block(self) -> tuple:
        self.expect("{")
        stmts: list[object] = []
        while not self.accept("}"):
            stmts.append(self._parse_statement())
        return tuple(stmts)

    def _parse_statement(self) -> object:
        tok = self.peek()
        if tok is None:
            raise KernelSyntaxError("unexpected end of kernel body")
        if tok.text == "{":
            return If(Num(1.0, True), self._parse_block(), ())
        if tok.text == ";":
            self.next()
            return If(Num(1.0, True), (), ())
        if tok.text == "if":
            return self._parse_if()
        if tok.text == "for":
            return self._parse_for()
        if tok.text == "while":
            return self._parse_while()
        if tok.text == "return":
            self.next()
            value = None
            nxt = self.peek()
            if nxt is not None and nxt.text != ";":
                value = self._parse_expr()
            self.expect(";")
            return Return(value)
        if tok.text in _TYPES or tok.text == "const":
            decl = self._parse_decl()
            self.expect(";")
            return decl
        if tok.text == "atomicAdd":
            stmt = self._parse_atomic()
            self.expect(";")
            return stmt
        stmt = self._parse_assign()
        self.expect(";")
        return stmt

    def _parse_decl(self) -> Decl:
        self.accept("const")
        type_tok = self.next()
        if type_tok.text not in _TYPES:
            raise KernelSyntaxError(f"unsupported type {type_tok.text!r}")
        while self.peek() is not None and self.peek().text in _TYPES:  # type: ignore[union-attr]
            self.next()
        name_tok = self.next()
        init = None
        if self.accept("="):
            init = self._parse_expr()
        return Decl(type_tok.text, name_tok.text, init)

    def _parse_assign(self) -> Assign:
        target = self._parse_postfix()
        if not isinstance(target, (Var, Index)):
            raise KernelSyntaxError("left side of assignment must be a "
                                    "variable or an indexed pointer")
        op_tok = self.next()
        if op_tok.text == "++":
            return Assign(target, "+=", Num(1.0, True))
        if op_tok.text == "--":
            return Assign(target, "-=", Num(1.0, True))
        if op_tok.text not in ("=", "+=", "-=", "*=", "/="):
            raise KernelSyntaxError(
                f"unsupported assignment operator {op_tok.text!r}")
        value = self._parse_expr()
        return Assign(target, op_tok.text, value)

    def _parse_atomic(self) -> AtomicAdd:
        self.expect("atomicAdd")
        self.expect("(")
        self.expect("&")
        target = self._parse_postfix()
        if not isinstance(target, Index):
            raise KernelSyntaxError("atomicAdd target must be indexed")
        self.expect(",")
        value = self._parse_expr()
        self.expect(")")
        return AtomicAdd(target, value)

    def _parse_if(self) -> If:
        self.expect("if")
        self.expect("(")
        cond = self._parse_expr()
        self.expect(")")
        then = self._parse_branch()
        orelse: tuple = ()
        if self.accept("else"):
            orelse = self._parse_branch()
        return If(cond, then, orelse)

    def _parse_branch(self) -> tuple:
        if self.peek() is not None and self.peek().text == "{":  # type: ignore[union-attr]
            return self._parse_block()
        return (self._parse_statement(),)

    def _parse_while(self) -> While:
        self.expect("while")
        self.expect("(")
        cond = self._parse_expr()
        self.expect(")")
        return While(cond, self._parse_branch())

    def _parse_for(self) -> For:
        self.expect("for")
        self.expect("(")
        tok = self.peek()
        if tok is not None and (tok.text in _TYPES or tok.text == "const"):
            init: object = self._parse_decl()
        else:
            init = self._parse_assign()
        self.expect(";")
        cond = self._parse_expr()
        self.expect(";")
        step = self._parse_assign()
        self.expect(")")
        body = self._parse_branch()
        return For(init, cond, step, body)

    # -- expressions (precedence climbing) ----------------------------------------

    _PRECEDENCE = [
        ("||",), ("&&",), ("|",), ("^",), ("&",),
        ("==", "!="), ("<", ">", "<=", ">="),
        ("<<", ">>"), ("+", "-"), ("*", "/", "%"),
    ]

    def _parse_expr(self) -> object:
        return self._parse_ternary()

    def _parse_ternary(self) -> object:
        cond = self._parse_binary(0)
        if self.accept("?"):
            if_true = self._parse_expr()
            self.expect(":")
            if_false = self._parse_expr()
            return Ternary(cond, if_true, if_false)
        return cond

    def _parse_binary(self, level: int) -> object:
        if level >= len(self._PRECEDENCE):
            return self._parse_unary()
        ops = self._PRECEDENCE[level]
        left = self._parse_binary(level + 1)
        while True:
            tok = self.peek()
            if tok is None or tok.text not in ops:
                return left
            self.next()
            right = self._parse_binary(level + 1)
            left = Binary(tok.text, left, right)

    def _parse_unary(self) -> object:
        tok = self.peek()
        if tok is not None and tok.text in ("-", "!", "+", "~"):
            self.next()
            operand = self._parse_unary()
            if tok.text == "+":
                return operand
            return Unary(tok.text, operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> object:
        tok = self.next()
        if tok.kind == "num":
            text = tok.text
            if text.lower().startswith("0x"):
                return Num(float(int(text, 16)), True)
            text = text.rstrip("fF")
            is_int = not any(c in text for c in ".eE")
            value = float(int(text)) if is_int else float(text)
            return Num(value, is_int)
        if tok.text == "(":
            # Cast "(float)" or parenthesised expression.
            nxt = self.peek()
            if nxt is not None and nxt.text in _TYPES:
                self.next()
                self.expect(")")
                return self._parse_unary()
            inner = self._parse_expr()
            self.expect(")")
            return inner
        if tok.kind != "name":
            raise KernelSyntaxError(
                f"unexpected token {tok.text!r} at offset {tok.pos}")
        name = tok.text
        if name in ("threadIdx", "blockIdx", "blockDim", "gridDim"):
            self.expect(".")
            axis = self.next()
            if axis.text != "x":
                raise KernelSyntaxError(
                    f"only the .x launch axis is supported, got "
                    f".{axis.text}")
            return Builtin(name)
        if self.accept("("):
            args: list[object] = []
            if not self.accept(")"):
                while True:
                    args.append(self._parse_expr())
                    if self.accept(")"):
                        break
                    self.expect(",")
            return Call(name, tuple(args))
        if self.accept("["):
            index = self._parse_expr()
            self.expect("]")
            return Index(name, index)
        return Var(name)


# --------------------------------------------------------------------------
# Device-function validation & costing
# --------------------------------------------------------------------------

def _contains_valued_return(stmts: tuple) -> bool:
    for stmt in stmts:
        if isinstance(stmt, Return) and stmt.value is not None:
            return True
        if isinstance(stmt, If) and (
                _contains_valued_return(stmt.then)
                or _contains_valued_return(stmt.orelse)):
            return True
        if isinstance(stmt, (For, While)) and \
                _contains_valued_return(stmt.body):
            return True
    return False


def _validate_device_body(name: str, body: tuple) -> None:
    if not body or not isinstance(body[-1], Return) \
            or body[-1].value is None:
        raise KernelSyntaxError(
            f"__device__ function {name!r} must end with "
            "'return <expr>;'")
    if _contains_valued_return(body[:-1]):
        raise KernelSyntaxError(
            f"__device__ function {name!r}: early returns with values "
            "are not supported (use a ternary)")


def _expr_flops(node: object) -> float:
    """FLOP weight of an expression with no pointer context."""
    if isinstance(node, (Num, Var, Builtin)) or node is None:
        return 0.0
    if isinstance(node, Unary):
        return 1.0 + _expr_flops(node.operand)
    if isinstance(node, Binary):
        return (_FLOP_OPS.get(node.op, 1) + _expr_flops(node.left)
                + _expr_flops(node.right))
    if isinstance(node, Ternary):
        return (1.0 + _expr_flops(node.cond) + _expr_flops(node.if_true)
                + _expr_flops(node.if_false))
    if isinstance(node, Call):
        return float(_FUNC_FLOPS.get(node.func, 5)) + sum(
            _expr_flops(a) for a in node.args)
    if isinstance(node, Index):
        return _expr_flops(node.index)
    return 0.0


def _device_fn_flops(body: tuple) -> float:
    flops = 0.0
    for stmt in body:
        if isinstance(stmt, Decl):
            flops += _expr_flops(stmt.init)
        elif isinstance(stmt, Assign):
            flops += _expr_flops(stmt.value) + (stmt.op != "=")
        elif isinstance(stmt, If):
            flops += (_expr_flops(stmt.cond)
                      + _device_fn_flops(stmt.then)
                      + _device_fn_flops(stmt.orelse))
        elif isinstance(stmt, (For, While)):
            trip = _static_trip_count(stmt) if isinstance(stmt, For) \
                else 8.0
            flops += _expr_flops(stmt.cond) * trip \
                + _device_fn_flops(stmt.body) * trip
        elif isinstance(stmt, Return):
            flops += _expr_flops(stmt.value)
    return flops


# --------------------------------------------------------------------------
# Static analysis: directions, patterns, FLOP estimate
# --------------------------------------------------------------------------

def _walk_expr(node: object, ast: KernelAst, data_dependent: set[str]) -> float:
    """Accumulate reads/gathers and return the FLOP weight of ``node``."""
    if isinstance(node, (Num, Var, Builtin)) or node is None:
        return 0.0
    if isinstance(node, Index):
        pointer_names = {p.name for p in ast.params if p.is_pointer}
        if node.base in pointer_names:
            ast.reads.add(node.base)
            if _mentions_data(node.index, data_dependent, pointer_names):
                ast.gathers.add(node.base)
        return _walk_expr(node.index, ast, data_dependent)
    if isinstance(node, Unary):
        return 1.0 + _walk_expr(node.operand, ast, data_dependent)
    if isinstance(node, Binary):
        return (_FLOP_OPS.get(node.op, 1)
                + _walk_expr(node.left, ast, data_dependent)
                + _walk_expr(node.right, ast, data_dependent))
    if isinstance(node, Ternary):
        return (1.0 + _walk_expr(node.cond, ast, data_dependent)
                + _walk_expr(node.if_true, ast, data_dependent)
                + _walk_expr(node.if_false, ast, data_dependent))
    if isinstance(node, Call):
        if node.func in ast.device_functions:
            cost = ast.device_functions[node.func].flops
        else:
            cost = float(_FUNC_FLOPS.get(node.func, 5))
        for arg in node.args:
            cost += _walk_expr(arg, ast, data_dependent)
        return cost
    raise KernelSyntaxError(f"unsupported expression node {node!r}")


def _mentions_data(node: object, data_dependent: set[str],
                   pointers: set[str]) -> bool:
    """Does an index expression involve loaded data (gather/scatter)?"""
    if isinstance(node, Var):
        return node.name in data_dependent
    if isinstance(node, Index):
        return node.base in pointers or _mentions_data(
            node.index, data_dependent, pointers)
    if isinstance(node, Unary):
        return _mentions_data(node.operand, data_dependent, pointers)
    if isinstance(node, Binary):
        return (_mentions_data(node.left, data_dependent, pointers)
                or _mentions_data(node.right, data_dependent, pointers))
    if isinstance(node, Ternary):
        return any(_mentions_data(n, data_dependent, pointers)
                   for n in (node.cond, node.if_true, node.if_false))
    if isinstance(node, Call):
        return any(_mentions_data(a, data_dependent, pointers)
                   for a in node.args)
    return False


def _expr_loads_pointer(node: object, pointers: set[str]) -> bool:
    if isinstance(node, Index):
        return node.base in pointers or _expr_loads_pointer(
            node.index, pointers)
    if isinstance(node, Unary):
        return _expr_loads_pointer(node.operand, pointers)
    if isinstance(node, Binary):
        return (_expr_loads_pointer(node.left, pointers)
                or _expr_loads_pointer(node.right, pointers))
    if isinstance(node, Ternary):
        return any(_expr_loads_pointer(n, pointers)
                   for n in (node.cond, node.if_true, node.if_false))
    if isinstance(node, Call):
        return any(_expr_loads_pointer(a, pointers) for a in node.args)
    return False


def analyze(ast: KernelAst) -> None:
    """Populate reads/writes/gathers/flops of a parsed kernel in place."""
    pointers = {p.name for p in ast.params if p.is_pointer}
    data_dependent: set[str] = set()
    ast.flops_per_thread = _analyze_stmts(ast.body, ast, data_dependent,
                                          pointers, multiplier=1.0)


def _analyze_stmts(stmts: tuple, ast: KernelAst, data_dependent: set[str],
                   pointers: set[str], multiplier: float) -> float:
    flops = 0.0
    for stmt in stmts:
        if isinstance(stmt, Decl):
            flops += _walk_expr(stmt.init, ast, data_dependent) * multiplier
            if stmt.init is not None and _expr_loads_pointer(stmt.init,
                                                             pointers):
                data_dependent.add(stmt.name)
        elif isinstance(stmt, Assign):
            flops += _walk_expr(stmt.value, ast, data_dependent) * multiplier
            if stmt.op != "=":
                flops += multiplier
            target = stmt.target
            if isinstance(target, Index) and target.base in pointers:
                ast.writes.add(target.base)
                if stmt.op != "=":
                    ast.reads.add(target.base)
                if _mentions_data(target.index, data_dependent, pointers):
                    ast.gathers.add(target.base)
                flops += _walk_expr(target.index, ast,
                                    data_dependent) * multiplier
            elif isinstance(target, Var):
                if _expr_loads_pointer(stmt.value, pointers):
                    data_dependent.add(target.name)
        elif isinstance(stmt, AtomicAdd):
            flops += (_walk_expr(stmt.value, ast, data_dependent) + 1.0) \
                * multiplier
            if stmt.target.base in pointers:
                ast.writes.add(stmt.target.base)
                ast.reads.add(stmt.target.base)
        elif isinstance(stmt, If):
            flops += _walk_expr(stmt.cond, ast, data_dependent) * multiplier
            flops += _analyze_stmts(stmt.then, ast, data_dependent,
                                    pointers, multiplier)
            flops += _analyze_stmts(stmt.orelse, ast, data_dependent,
                                    pointers, multiplier)
        elif isinstance(stmt, For):
            trip = _static_trip_count(stmt)
            inner = multiplier * trip
            if isinstance(stmt.init, Decl):
                flops += _walk_expr(stmt.init.init, ast,
                                    data_dependent) * multiplier
            flops += _walk_expr(stmt.cond, ast, data_dependent) * inner
            flops += _analyze_stmts(stmt.body, ast, data_dependent,
                                    pointers, inner)
        elif isinstance(stmt, While):
            inner = multiplier * 8.0
            flops += _walk_expr(stmt.cond, ast, data_dependent) * inner
            flops += _analyze_stmts(stmt.body, ast, data_dependent,
                                    pointers, inner)
        elif isinstance(stmt, Return):
            flops += _walk_expr(stmt.value, ast,
                                data_dependent) * multiplier
        else:  # pragma: no cover - parser produces only the above
            raise KernelSyntaxError(f"unsupported statement {stmt!r}")
    return flops


def _static_trip_count(loop: For) -> float:
    """Best-effort constant trip count for FLOP estimation (default 8)."""
    if (isinstance(loop.init, Decl) and isinstance(loop.init.init, Num)
            and isinstance(loop.cond, Binary)
            and isinstance(loop.cond.right, Num)
            and loop.cond.op in ("<", "<=")):
        lo = loop.init.init.value
        hi = loop.cond.right.value + (1 if loop.cond.op == "<=" else 0)
        return max(1.0, hi - lo)
    return 8.0


# --------------------------------------------------------------------------
# SPMD NumPy interpreter
# --------------------------------------------------------------------------

_MATH_FUNCS: dict[str, Callable] = {
    "exp": np.exp, "expf": np.exp, "log": np.log, "logf": np.log,
    "sqrt": np.sqrt, "sqrtf": np.sqrt, "fabs": np.abs, "fabsf": np.abs,
    "abs": np.abs, "pow": np.power, "powf": np.power,
    "erf": _sp_special.erf, "erff": _sp_special.erf,
    "fmax": np.maximum, "fmaxf": np.maximum,
    "fmin": np.minimum, "fminf": np.minimum,
    "max": np.maximum, "min": np.minimum,
    "sin": np.sin, "sinf": np.sin, "cos": np.cos, "cosf": np.cos,
    "tanh": np.tanh, "tanhf": np.tanh,
    "floor": np.floor, "ceil": np.ceil,
    "normcdf": lambda x: 0.5 * (1.0 + _sp_special.erf(
        np.asarray(x) / math.sqrt(2.0))),
    "normcdff": lambda x: 0.5 * (1.0 + _sp_special.erf(
        np.asarray(x) / math.sqrt(2.0))),
}


class _ThreadReturn(Exception):
    """Internal: a uniform `return;` cut the remaining statements."""


class KernelInterpreter:
    """Executes a parsed kernel for one launch, vectorised over threads."""

    def __init__(self, ast: KernelAst):
        self.ast = ast

    def run(self, grid: tuple[int, ...], block: tuple[int, ...],
            args: tuple[object, ...]) -> None:
        """Execute the kernel SPMD-style over the launch grid."""
        if len(args) != len(self.ast.params):
            raise TypeError(
                f"kernel {self.ast.name!r} expects {len(self.ast.params)} "
                f"arguments, got {len(args)}")
        n_blocks = int(np.prod(grid))
        block_dim = int(np.prod(block))
        tid = np.arange(n_blocks * block_dim, dtype=np.int64)
        env: dict[str, object] = {}
        buffers: dict[str, np.ndarray] = {}
        for param, arg in zip(self.ast.params, args):
            if param.is_pointer:
                if isinstance(arg, np.ndarray):
                    data = arg
                else:
                    data = getattr(arg, "data", arg)
                if not isinstance(data, np.ndarray):
                    raise TypeError(
                        f"pointer parameter {param.name!r} needs an array, "
                        f"got {type(arg).__name__}")
                buffers[param.name] = data
            else:
                env[param.name] = (int(arg) if param.type in
                                   ("int", "long", "unsigned", "size_t")
                                   else float(arg))
        ctx = _EvalContext(
            env=env, buffers=buffers,
            builtins={
                "threadIdx": tid % block_dim,
                "blockIdx": tid // block_dim,
                "blockDim": block_dim,
                "gridDim": n_blocks,
            },
            mask=np.ones(len(tid), dtype=bool),
            returned=np.zeros(len(tid), dtype=bool),
            functions=self.ast.device_functions,
        )
        try:
            _exec_stmts(self.ast.body, ctx)
        except _ThreadReturn:
            pass


@dataclass(slots=True)
class _EvalContext:
    env: dict[str, object]
    buffers: dict[str, np.ndarray]
    builtins: dict[str, object]
    mask: np.ndarray
    #: Threads that executed `return;` — shared across branch sub-contexts
    #: so a divergent return silences those threads for the whole kernel.
    returned: np.ndarray
    #: __device__ helper functions, callable from any expression.
    functions: dict[str, DeviceFunction] = field(default_factory=dict)

    @property
    def active(self) -> np.ndarray:
        return self.mask & ~self.returned


def _eval(node: object, ctx: _EvalContext) -> object:
    if isinstance(node, Num):
        return int(node.value) if node.is_int else node.value
    if isinstance(node, Var):
        if node.name in ctx.env:
            return ctx.env[node.name]
        raise KernelSyntaxError(f"undefined variable {node.name!r}")
    if isinstance(node, Builtin):
        return ctx.builtins[node.name]
    if isinstance(node, Index):
        idx = _as_index(_eval(node.index, ctx))
        buf = ctx.buffers.get(node.base)
        if buf is None:
            raise KernelSyntaxError(f"{node.base!r} is not a pointer")
        flat = buf.reshape(-1)
        safe = np.clip(idx, 0, flat.size - 1)
        return flat[safe]
    if isinstance(node, Unary):
        val = _eval(node.operand, ctx)
        if node.op == "-":
            return -val  # type: ignore[operator]
        if node.op == "!":
            return np.logical_not(val)
        if node.op == "~":
            return ~_as_index(val)
        raise KernelSyntaxError(f"unsupported unary {node.op!r}")
    if isinstance(node, Binary):
        left = _eval(node.left, ctx)
        right = _eval(node.right, ctx)
        return _apply_binary(node.op, left, right)
    if isinstance(node, Ternary):
        cond = np.asarray(_eval(node.cond, ctx), dtype=bool)
        return np.where(cond, _eval(node.if_true, ctx),
                        _eval(node.if_false, ctx))
    if isinstance(node, Call):
        user_fn = ctx.functions.get(node.func)
        if user_fn is not None:
            return _call_device_function(
                user_fn, [_eval(a, ctx) for a in node.args], ctx)
        func = _MATH_FUNCS.get(node.func)
        if func is None:
            raise KernelSyntaxError(f"unsupported function {node.func!r}")
        return func(*[_eval(a, ctx) for a in node.args])
    raise KernelSyntaxError(f"cannot evaluate {node!r}")


def _call_device_function(fn: DeviceFunction, args: list[object],
                          ctx: _EvalContext) -> object:
    """Inline-interpret a __device__ helper for the active threads."""
    if len(args) != len(fn.params):
        raise KernelSyntaxError(
            f"__device__ {fn.name!r} expects {len(fn.params)} arguments, "
            f"got {len(args)}")
    local = _EvalContext(
        env=dict(zip((p.name for p in fn.params), args)),
        buffers={},                      # scalar-only helpers
        builtins=ctx.builtins,
        mask=ctx.mask,
        returned=ctx.returned.copy(),    # helper returns stay local
        functions=ctx.functions,
    )
    _exec_stmts(fn.body[:-1], local)
    tail = fn.body[-1]
    assert isinstance(tail, Return) and tail.value is not None
    return _eval(tail.value, local)


def _as_index(value: object) -> np.ndarray:
    return np.asarray(value).astype(np.int64)


def _apply_binary(op: str, left: object, right: object) -> object:
    if op == "+":
        return np.add(left, right)
    if op == "-":
        return np.subtract(left, right)
    if op == "*":
        return np.multiply(left, right)
    if op == "/":
        la = np.asarray(left)
        if la.dtype.kind in "iu" and np.asarray(right).dtype.kind in "iu":
            return la // np.asarray(right)
        return np.divide(left, right)
    if op == "%":
        return np.mod(left, right)
    if op == "<":
        return np.less(left, right)
    if op == ">":
        return np.greater(left, right)
    if op == "<=":
        return np.less_equal(left, right)
    if op == ">=":
        return np.greater_equal(left, right)
    if op == "==":
        return np.equal(left, right)
    if op == "!=":
        return np.not_equal(left, right)
    if op == "&&":
        return np.logical_and(left, right)
    if op == "||":
        return np.logical_or(left, right)
    if op == "&":
        return _as_index(left) & _as_index(right)
    if op == "|":
        return _as_index(left) | _as_index(right)
    if op == "^":
        return _as_index(left) ^ _as_index(right)
    if op == "<<":
        return _as_index(left) << _as_index(right)
    if op == ">>":
        return _as_index(left) >> _as_index(right)
    raise KernelSyntaxError(f"unsupported operator {op!r}")


def _broadcast_to_threads(value: object, n: int) -> np.ndarray:
    arr = np.asarray(value)
    if arr.ndim == 0:
        return np.broadcast_to(arr, (n,)).copy()
    return arr


def _exec_stmts(stmts: tuple, ctx: _EvalContext) -> None:
    for stmt in stmts:
        _exec_stmt(stmt, ctx)


def _exec_stmt(stmt: object, ctx: _EvalContext) -> None:
    n = len(ctx.mask)
    if isinstance(stmt, Decl):
        value = _eval(stmt.init, ctx) if stmt.init is not None else 0
        if stmt.type in ("int", "long", "unsigned", "size_t"):
            value = _as_index(value) if np.asarray(value).ndim else int(value)
        ctx.env[stmt.name] = value
        return
    if isinstance(stmt, Assign):
        value = _eval(stmt.value, ctx)
        target = stmt.target
        active = ctx.active
        if isinstance(target, Var):
            if stmt.op != "=":
                base = ctx.env.get(target.name, 0)
                value = _apply_binary(stmt.op[0], base, value)
            if active.all():
                ctx.env[target.name] = value
            else:
                old = _broadcast_to_threads(ctx.env.get(target.name, 0), n)
                new = _broadcast_to_threads(value, n)
                ctx.env[target.name] = np.where(active, new, old)
            return
        assert isinstance(target, Index)
        buf = ctx.buffers.get(target.base)
        if buf is None:
            raise KernelSyntaxError(f"{target.base!r} is not a pointer")
        flat = buf.reshape(-1)
        idx = _as_index(_eval(target.index, ctx))
        idx_b = np.broadcast_to(idx, (n,)) if idx.ndim else \
            np.full(n, int(idx))
        val_b = _broadcast_to_threads(value, n).astype(flat.dtype,
                                                       copy=False)
        valid = active & (idx_b >= 0) & (idx_b < flat.size)
        if stmt.op == "=":
            flat[idx_b[valid]] = np.broadcast_to(val_b, (n,))[valid]
        else:
            op = stmt.op[0]
            current = flat[idx_b[valid]]
            updated = _apply_binary(op, current,
                                    np.broadcast_to(val_b, (n,))[valid])
            flat[idx_b[valid]] = updated
        return
    if isinstance(stmt, AtomicAdd):
        buf = ctx.buffers.get(stmt.target.base)
        if buf is None:
            raise KernelSyntaxError(f"{stmt.target.base!r} is not a pointer")
        flat = buf.reshape(-1)
        idx = _as_index(_eval(stmt.target.index, ctx))
        idx_b = np.broadcast_to(idx, (n,)) if idx.ndim else \
            np.full(n, int(idx))
        val = _broadcast_to_threads(_eval(stmt.value, ctx), n)
        valid = ctx.active & (idx_b >= 0) & (idx_b < flat.size)
        np.add.at(flat, idx_b[valid], val[valid].astype(flat.dtype))
        return
    if isinstance(stmt, If):
        cond = np.asarray(_eval(stmt.cond, ctx))
        if cond.ndim == 0:
            if bool(cond):
                _exec_stmts(stmt.then, ctx)
            else:
                _exec_stmts(stmt.orelse, ctx)
            return
        cond = cond.astype(bool)
        then_mask = ctx.mask & cond
        else_mask = ctx.mask & ~cond
        if then_mask.any():
            sub = _EvalContext(ctx.env, ctx.buffers, ctx.builtins,
                               then_mask, ctx.returned, ctx.functions)
            _exec_guarded(stmt.then, sub)
            ctx.env = sub.env
        if stmt.orelse and else_mask.any():
            sub = _EvalContext(ctx.env, ctx.buffers, ctx.builtins,
                               else_mask, ctx.returned, ctx.functions)
            _exec_guarded(stmt.orelse, sub)
            ctx.env = sub.env
        return
    if isinstance(stmt, For):
        _exec_stmt(stmt.init, ctx)
        guard = 0
        while True:
            cond = np.asarray(_eval(stmt.cond, ctx))
            if cond.ndim != 0:
                raise KernelSyntaxError(
                    "for-loop bounds must be uniform across threads")
            if not bool(cond):
                break
            _exec_stmts(stmt.body, ctx)
            _exec_stmt(stmt.step, ctx)
            guard += 1
            if guard > 10_000_000:  # pragma: no cover - runaway protection
                raise KernelSyntaxError("for-loop exceeded iteration cap")
        return
    if isinstance(stmt, While):
        # Divergent conditions supported: threads leave the loop as their
        # condition falsifies (the sub-context's mask shrinks), like real
        # SIMT re-convergence.
        sub = _EvalContext(ctx.env, ctx.buffers, ctx.builtins,
                           ctx.mask.copy(), ctx.returned, ctx.functions)
        guard = 0
        while True:
            cond = np.asarray(_eval(stmt.cond, sub))
            if cond.ndim == 0:
                if not bool(cond):
                    break
            else:
                sub.mask &= cond.astype(bool)
                if not sub.active.any():
                    break
            _exec_stmts(stmt.body, sub)
            guard += 1
            if guard > 1_000_000:  # pragma: no cover - runaway guard
                raise KernelSyntaxError("while-loop exceeded iteration cap")
        ctx.env = sub.env
        return
    if isinstance(stmt, Return):
        if stmt.value is not None:
            raise KernelSyntaxError(
                "__global__ kernels are void; 'return <expr>;' is only "
                "valid in __device__ functions")
        # The active threads return: silenced for the rest of the kernel
        # (the `returned` array is shared with every enclosing context).
        ctx.returned |= ctx.active
        return
    raise KernelSyntaxError(f"unsupported statement {stmt!r}")


def _exec_guarded(stmts: tuple, ctx: _EvalContext) -> None:
    try:
        _exec_stmts(stmts, ctx)
    except _ThreadReturn:
        pass


# --------------------------------------------------------------------------
# Public entry point
# --------------------------------------------------------------------------

def parse_kernel(source: str) -> KernelAst:
    """Parse + analyse a kernel source string."""
    ast = _Parser(tokenize(source)).parse_kernel()
    analyze(ast)
    return ast
