"""Command-line interface: ``python -m repro <command> ...``.

Subcommands:

``run``       one workload on GrCUDA or GrOUT at a modeled footprint
``serve``     long-lived daemon: JSON workload specs over HTTP
``figure``    regenerate one paper figure (1, 5, 6a, 6b, 7, 8, 9)
``manifest``  execute a JSON workload manifest
``plan``      static autoscaling recommendation for a footprint
``sweep``     parameter sweep with CSV output
``compare``   diff two figure JSON exports (calibration regression check)

Every runtime-building subcommand parses its knobs into one
:class:`~repro.core.config.RuntimeConfig` (``RuntimeConfig.from_args``),
so the CLI, the serve daemon and the benchmark harness construct
runtimes identically.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.bench import (
    fig1,
    fig5,
    fig6a,
    fig6b,
    fig7,
    fig8,
    fig9,
    format_table,
    run_grout,
    run_single_node,
)
from repro.bench.timeline import render_timeline, utilisation_report
from repro.core import KpiAutoscaler, RuntimeConfig
from repro.gpu.specs import GIB
from repro.workloads import WORKLOADS

FIGURES = {
    "1": fig1, "5": fig5, "6a": fig6a, "6b": fig6b, "7": fig7,
    "8": fig8, "9": fig9,
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree of every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GrOUT reproduction: run workloads, regenerate the "
                    "paper's figures, execute manifests.")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one suite workload")
    run_p.add_argument("workload", choices=sorted(WORKLOADS))
    run_p.add_argument("--gb", type=float, default=4.0,
                       help="modeled footprint in GiB (default 4)")
    run_p.add_argument("--mode", choices=("grcuda", "grout"),
                       default="grcuda")
    RuntimeConfig.add_cli_args(run_p)
    run_p.add_argument("--repeats", type=int, default=1,
                       help="repetitions averaged per the paper's "
                            "protocol (default 1; simulation is "
                            "deterministic)")
    run_p.add_argument("--faults", metavar="SPEC",
                       help="inject failures (grout only): comma-"
                            "separated 'crash:worker0@1.5', "
                            "'degrade:controller-worker1@0.5x0.25', "
                            "'flake:worker0-worker1@2.0*3'")
    run_p.add_argument("--replace-crashed", action="store_true",
                       dest="replace_crashed",
                       help="provision a replacement worker after "
                            "each injected crash")
    run_p.add_argument("--sessions", type=int, default=1, metavar="N",
                       help="run N concurrent copies of the workload as "
                            "multi-program sessions sharing one cluster "
                            "(grout only; default 1 = classic run)")
    run_p.add_argument("--no-verify", action="store_true",
                       help="skip the numerical check")
    run_p.add_argument("--timeline", action="store_true",
                       help="print the ASCII execution timeline")
    run_p.add_argument("--chrome-trace", metavar="FILE",
                       help="write a chrome://tracing JSON of the run "
                            "(includes metric counter tracks)")
    run_p.add_argument("--metrics", metavar="PATH", nargs="?",
                       const="-", default=None,
                       help="export Prometheus-format metrics to PATH "
                            "(or stdout without PATH) and print the "
                            "per-CE run summary")
    run_p.add_argument("--report", metavar="FILE",
                       help="write the JSON run report (metrics + "
                            "per-CE summary + accounting)")

    serve_p = sub.add_parser(
        "serve", help="serve workload specs over HTTP on a persistent "
                      "runtime")
    RuntimeConfig.add_cli_args(serve_p, default_policy="round-robin")
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8781,
                         help="TCP port (default 8781; 0 = ephemeral)")
    serve_p.add_argument("--unix-socket", metavar="PATH", default=None,
                         dest="unix_socket",
                         help="listen on a unix socket instead of TCP")
    serve_p.add_argument("--tenant-quota", type=int, default=64,
                         metavar="N", dest="tenant_quota",
                         help="max in-flight sessions per tenant "
                              "(default 64)")
    serve_p.add_argument("--max-sessions", type=int, default=1024,
                         metavar="N", dest="max_sessions",
                         help="max in-flight sessions overall "
                              "(default 1024)")

    fig_p = sub.add_parser("figure", help="regenerate a paper figure")
    fig_p.add_argument("figure", choices=sorted(FIGURES))
    fig_p.add_argument("--quick", action="store_true",
                       help="trimmed size sweep")
    fig_p.add_argument("--json", metavar="FILE",
                       help="also write the figure data as JSON")

    man_p = sub.add_parser("manifest", help="execute a JSON manifest")
    man_p.add_argument("path", help="manifest file, or - for stdin")
    man_p.add_argument("--mode", choices=("grcuda", "grout"),
                       default="grout")
    man_p.add_argument("--workers", type=int, default=2)

    plan_p = sub.add_parser("plan",
                            help="autoscaling recommendation for a "
                                 "footprint")
    plan_p.add_argument("--gb", type=float, required=True)
    plan_p.add_argument("--target-osf", type=float, default=1.0)
    plan_p.add_argument("--node-gb", type=float, default=32.0,
                        help="GPU memory per node in GiB (default 32)")
    plan_p.add_argument("--max-workers", type=int, default=16)

    sweep_p = sub.add_parser("sweep",
                             help="parameter sweep with CSV output")
    sweep_p.add_argument("workloads", nargs="+",
                         help=f"from {sorted(WORKLOADS)}")
    sweep_p.add_argument("--sizes", default="4,32,96",
                         help="comma-separated GiB footprints")
    sweep_p.add_argument("--modes", default="grcuda,grout")
    sweep_p.add_argument("--policies", default="vector-step")
    sweep_p.add_argument("--workers", default="2",
                         help="comma-separated worker counts")
    sweep_p.add_argument("--repeats", type=int, default=1,
                         help="repetitions averaged per configuration")
    sweep_p.add_argument("--out", default="-",
                         help="CSV file, or - for stdout")

    cmp_p = sub.add_parser("compare",
                           help="diff two `figure --json` exports")
    cmp_p.add_argument("baseline")
    cmp_p.add_argument("current")
    cmp_p.add_argument("--tolerance", type=float, default=1.5,
                       help="max allowed ratio per value (default 1.5)")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    footprint = int(args.gb * GIB)
    try:
        config = RuntimeConfig.from_args(args)
        config.fault_plan()          # surfaces --faults parse errors now
    except ValueError as exc:
        print(f"bad configuration: {exc}", file=sys.stderr)
        return 2
    if args.sessions < 1:
        print("--sessions must be >= 1", file=sys.stderr)
        return 2
    if args.sessions > 1:
        if args.mode != "grout":
            print("--sessions requires --mode grout", file=sys.stderr)
            return 2
        return _cmd_run_sessions(args, footprint, config)
    if args.mode == "grcuda":
        if config.faults is not None:
            print("--faults requires --mode grout", file=sys.stderr)
            return 2
        if config.chunk_bytes is not None or config.collectives:
            print("--chunk-bytes/--collectives require --mode grout",
                  file=sys.stderr)
            return 2
        result = run_single_node(args.workload, footprint, config=config,
                                 check=not args.no_verify,
                                 repeats=args.repeats)
    else:
        result = run_grout(args.workload, footprint, config=config,
                           check=not args.no_verify,
                           repeats=args.repeats)
    rows = [
        ("workload", result.workload),
        ("mode", result.mode),
        ("footprint", f"{result.footprint_gb:g} GiB"),
        ("oversubscription", f"{result.oversubscription:.3g}x "
                             "(vs one 2xV100 node)"),
        ("policy", result.policy),
        ("uvm backend", args.uvm_backend),
        ("simulated time", f"{result.elapsed_seconds:.4g} s"),
        ("completed", "yes" if result.completed
         else "no (hit the 2.5h cap)"),
        ("verified", "skipped" if args.no_verify
         else ("yes" if result.verified else "NO")),
    ]
    print(format_table(["field", "value"], rows))
    if _wants_observability(args):
        print("\n(re-running with tracing...)")
        rt = _traced_run(args, footprint, config)
        _emit_observability(args, rt)
    return 0 if (result.verified or args.no_verify) else 1


def _wants_observability(args: argparse.Namespace) -> bool:
    """Whether any tracing/metrics/report output flag was given."""
    return bool(args.timeline or args.chrome_trace
                or args.metrics is not None or args.report is not None)


def _emit_observability(args: argparse.Namespace, rt) -> None:
    """Print/write the timeline, chrome trace, metrics and report."""
    tracer = rt.tracer
    assert tracer is not None
    if args.timeline:
        print(render_timeline(tracer))
        print()
        print(utilisation_report(tracer))
    if args.chrome_trace:
        from repro.bench.chrometrace import write_chrome_trace
        write_chrome_trace(tracer, args.chrome_trace, metrics=rt.metrics)
        print(f"chrome trace written to {args.chrome_trace} "
              "(open in chrome://tracing or Perfetto)")
    if args.metrics is not None or args.report is not None:
        from repro.obs import build_run_summary, write_prometheus
        print()
        print(build_run_summary(rt).render())
        if args.metrics is not None:
            if args.metrics == "-":
                from repro.obs import to_prometheus_text
                print()
                print(to_prometheus_text(rt.metrics), end="")
            else:
                write_prometheus(rt.metrics, args.metrics)
                print(f"\nmetrics written to {args.metrics} "
                      "(Prometheus text format)")
        if args.report is not None:
            from repro.bench.runreport import write_run_report
            write_run_report(rt, args.report)
            print(f"run report written to {args.report}")


def _cmd_run_sessions(args: argparse.Namespace, footprint: int,
                      config: RuntimeConfig) -> int:
    """Run N concurrent copies of the workload as multi-program sessions.

    One cluster, one runtime; every copy builds and submits through its
    own session before any sync, so the fair-share gate interleaves them.
    """
    from repro.workloads import make_workload

    programs = [make_workload(args.workload, footprint, seed=11 + i)
                for i in range(args.sessions)]
    rt = config.build_runtime(workload=programs[0],
                              footprint_bytes=footprint)
    sessions = [rt.session(f"p{i}") for i in range(args.sessions)]
    for session, wl in zip(sessions, programs):
        wl.build(session)
        wl.run(session)
    synced = [session.sync(timeout=9000) for session in sessions]
    verified = [True if args.no_verify else wl.verify()
                for wl in programs]

    scheduled = rt.metrics.family("grout_session_ces_scheduled_total")
    throttled = rt.metrics.family("grout_session_throttled_total")
    print(format_table(
        ["field", "value"],
        [("workload", f"{args.workload} x{args.sessions} sessions"),
         ("mode", "grout"),
         ("footprint", f"{args.gb:g} GiB per session "
                       f"({args.gb * args.sessions:g} GiB total)"),
         ("policy", args.policy),
         ("simulated makespan", f"{rt.engine.now:.4g} s")]))
    print()
    print(format_table(
        ["session", "ces", "throttled", "completed", "verified"],
        [(s.name,
          int(scheduled.labels(session=s.name).value),
          int(throttled.labels(session=s.name).value),
          "yes" if ok else "no",
          "skipped" if args.no_verify else ("yes" if good else "NO"))
         for s, ok, good in zip(sessions, synced, verified)]))
    if _wants_observability(args):
        print()
        _emit_observability(args, rt)
    return 0 if (all(synced) and all(verified)) else 1


def _traced_run(args: argparse.Namespace, footprint: int,
                config: RuntimeConfig):
    from repro.workloads import make_workload

    wl = make_workload(args.workload, footprint)
    rt = config.build_runtime(workload=wl, footprint_bytes=footprint)
    wl.execute(rt, timeout=9000, check=False)
    return rt


def _cmd_figure(args: argparse.Namespace) -> int:
    generator = FIGURES[args.figure]
    if args.figure in ("5", "9"):
        result = generator()
    elif args.figure == "8":
        result = generator(96 if not args.quick else 8)
    elif args.quick:
        result = generator((4, 32, 96))
    else:
        result = generator()
    print(result.render())
    if args.json:
        from repro.bench import write_figure_json
        write_figure_json(result, args.json)
        print(f"figure data written to {args.json}")
    return 0


def _cmd_manifest(args: argparse.Namespace) -> int:
    from repro.polyglot import run_manifest

    if args.path == "-":
        source = sys.stdin.read()
    else:
        with open(args.path, "r", encoding="utf-8") as fh:
            source = fh.read()
    runtime = RuntimeConfig(mode=args.mode, n_workers=args.workers,
                            policy="round-robin").build_runtime()
    result = run_manifest(runtime, source)
    print(f"executed {result.ce_count} steps in "
          f"{result.elapsed_seconds:.4g} simulated seconds")
    for name, values in result.reads.items():
        preview = np.array2string(values.reshape(-1)[:8], precision=4)
        print(f"  {name}: shape={values.shape} {preview}"
              f"{' ...' if values.size > 8 else ''}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import GroutDaemon, GroutService

    try:
        config = RuntimeConfig.from_args(args)
        service = GroutService(config,
                               tenant_quota=args.tenant_quota,
                               max_sessions=args.max_sessions)
    except ValueError as exc:
        print(f"bad configuration: {exc}", file=sys.stderr)
        return 2
    daemon = GroutDaemon(service, host=args.host, port=args.port,
                         path=args.unix_socket)

    async def _serve() -> None:
        address = await daemon.start()
        # Flushed marker line: smoke scripts poll stdout for readiness.
        print(f"grout serve listening on {address}", flush=True)
        await daemon.run()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    print("grout serve: shut down cleanly", flush=True)
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    scaler = KpiAutoscaler(target_osf=args.target_osf,
                           max_workers=args.max_workers)
    decision = scaler.plan(int(args.gb * GIB), int(args.node_gb * GIB))
    print(format_table(
        ["field", "value"],
        [("footprint", f"{args.gb:g} GiB"),
         ("node GPU memory", f"{args.node_gb:g} GiB"),
         ("target per-node OSF", f"{args.target_osf:g}"),
         ("OSF on one node", f"{decision.observed_osf:.3g}x"),
         ("recommended workers", decision.recommended_workers)]))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.bench import sweep, write_csv

    results = sweep(
        args.workloads,
        [float(s) for s in args.sizes.split(",")],
        modes=tuple(args.modes.split(",")),
        policies=tuple(args.policies.split(",")),
        worker_counts=[int(w) for w in args.workers.split(",")],
        repeats=args.repeats,
    )
    if args.out == "-":
        rows = write_csv(results, sys.stdout)
    else:
        rows = write_csv(results, args.out)
        print(f"{rows} rows written to {args.out}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.bench import compare_figures

    comparison = compare_figures(args.baseline, args.current)
    for issue in comparison.structural:
        print(f"STRUCTURAL: {issue}")
    for drift in comparison.drifts:
        print(f"drift: {drift}")
    ok = comparison.within(args.tolerance)
    worst = comparison.worst()
    if worst is not None:
        print(f"worst drift: {worst}")
    print(f"within {args.tolerance:g}x tolerance: "
          f"{'yes' if ok else 'NO'}")
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "serve": _cmd_serve,
        "figure": _cmd_figure,
        "manifest": _cmd_manifest,
        "plan": _cmd_plan,
        "sweep": _cmd_sweep,
        "compare": _cmd_compare,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
