"""GrOUT reproduction — transparent scale-out over UVM oversubscription.

Reproduces Di Dio Lavore et al., *"GrOUT: Transparent Scale-Out to Overcome
UVM's Oversubscription Slowdowns"* (IPDPSW 2024) as a pure-Python system:
the GrOUT framework itself (hierarchical DAG scheduling, coherence,
policies), its GrCUDA single-node baseline, and simulated substrates for
everything the paper ran on real hardware (multi-GPU nodes, the UVM page
migration engine, the OCI interconnect).

Quick start::

    from repro import GroutRuntime
    from repro.polyglot import polyglot, GrOUT

    rt = GroutRuntime(n_workers=2)
    polyglot.bind(GrOUT, rt)
    build = polyglot.eval(GrOUT, "buildkernel")
    square = build("__global__ void square(float* x, int n) { ... }")
    x = polyglot.eval(GrOUT, "float[100]")
    square(4, 32)(x, 100)
"""

from repro.core import GrCudaRuntime, GroutRuntime, ManagedArray
from repro.core.policies import (
    ExplorationLevel,
    MinTransferSizePolicy,
    MinTransferTimePolicy,
    RoundRobinPolicy,
    VectorStepPolicy,
    make_policy,
)

__version__ = "1.0.0"

__all__ = [
    "ExplorationLevel",
    "GrCudaRuntime",
    "GroutRuntime",
    "ManagedArray",
    "MinTransferSizePolicy",
    "MinTransferTimePolicy",
    "RoundRobinPolicy",
    "VectorStepPolicy",
    "__version__",
    "make_policy",
]
