"""Entry point for ``python -m repro``."""

import sys

from repro.cli import main

try:
    sys.exit(main())
except BrokenPipeError:      # e.g. `python -m repro ... | head`
    sys.exit(0)
