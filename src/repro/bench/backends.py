"""Paging-backend comparison harness (the GrOUT-vs-paging-design axis).

Sweeps (workload × footprint × paging backend) on the single-node
baseline runtime — oversubscription cliffs are a single-node phenomenon;
the backend decides how hard they bite — and reports per-(workload,
backend) slowdown curves in the ``grout-bench-backends/1`` schema.

The point of the exercise: the CPU-driven PME and a GPUVM-style
GPU-driven design *disagree* about which workloads hurt.  Streaming
loses its prefetcher runway under GPU-driven paging; random access
stops collapsing.  ``check_divergence`` turns that disagreement into a
gate — at least one irregular workload must separate the backends by
the requested factor, or the backends have degenerated into one model.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.bench.harness import RUN_CAP_SECONDS, run_single_node
from repro.gpu.specs import GIB
from repro.uvm.backends import PAGING_BACKENDS

SCHEMA = "grout-bench-backends/1"

#: Default sweep: fits (0.5× OSF) through the paper's first two cliffs.
DEFAULT_SIZES_GB: tuple[float, ...] = (16.0, 32.0, 64.0, 96.0)

#: Trimmed sweep for CI smoke runs.
QUICK_SIZES_GB: tuple[float, ...] = (16.0, 64.0)

#: Default workload set: one regular streamer as the control, plus the
#: irregular suite the backends disagree about.
DEFAULT_WORKLOADS: tuple[str, ...] = ("mv", "spmv", "bfs", "join")

#: The workloads whose access patterns are data-dependent — the ones
#: ``check_divergence`` inspects.
IRREGULAR_WORKLOADS: frozenset[str] = frozenset({"spmv", "bfs", "join"})


def run_backends(workloads: Sequence[str] = DEFAULT_WORKLOADS,
                 sizes_gb: Sequence[float] = DEFAULT_SIZES_GB,
                 backends: Sequence[str] | None = None, *,
                 cap: float | None = RUN_CAP_SECONDS,
                 repeats: int = 1,
                 check: bool = False,
                 log: Callable[[str], None] | None = None) -> dict:
    """Run the sweep; returns the ``grout-bench-backends/1`` payload.

    Each result row records the simulated elapsed time plus its
    *slowdown* — elapsed over the same (workload, backend) pair's
    smallest-footprint elapsed, the paper's Fig. 6 y-axis.
    """
    backends = tuple(backends) if backends else tuple(sorted(PAGING_BACKENDS))
    results: list[dict] = []
    for workload in workloads:
        for backend in backends:
            base: float | None = None
            for gb in sizes_gb:
                res = run_single_node(
                    workload, int(gb * GIB), cap=cap, check=check,
                    repeats=repeats, uvm_backend=backend)
                if base is None:
                    base = res.elapsed_seconds or 1e-12
                row = {
                    "workload": workload,
                    "backend": backend,
                    "gb": gb,
                    "elapsed_seconds": res.elapsed_seconds,
                    "slowdown": res.elapsed_seconds / base,
                    "completed": res.completed,
                    "oversubscription": res.oversubscription,
                }
                results.append(row)
                if log is not None:
                    log(f"  {workload:>5s} {backend:>8s} {gb:6.4g} GB  "
                        f"{res.elapsed_seconds:10.4g} s  "
                        f"x{row['slowdown']:.4g}")
    return {
        "schema": SCHEMA,
        "sizes_gb": list(sizes_gb),
        "workloads": list(workloads),
        "backends": list(backends),
        "results": results,
    }


def slowdown_curves(payload: dict) -> dict[tuple[str, str], list[float]]:
    """(workload, backend) -> slowdown series, in sweep order."""
    curves: dict[tuple[str, str], list[float]] = {}
    for row in payload["results"]:
        curves.setdefault((row["workload"], row["backend"]), []) \
            .append(row["slowdown"])
    return curves


def divergence(payload: dict,
               baseline: str = "cpu-pme",
               other: str = "gpuvm") -> dict[str, float]:
    """Per-workload worst-case elapsed ratio between two backends.

    The ratio is symmetric (always >= 1): 4.0 means one backend ran the
    same configuration four times longer than the other, whichever way
    around.
    """
    elapsed: dict[tuple[str, str, float], float] = {
        (r["workload"], r["backend"], r["gb"]): r["elapsed_seconds"]
        for r in payload["results"]}
    worst: dict[str, float] = {}
    for (workload, backend, gb), seconds in elapsed.items():
        if backend != baseline:
            continue
        peer = elapsed.get((workload, other, gb))
        if peer is None or seconds <= 0 or peer <= 0:
            continue
        ratio = max(seconds / peer, peer / seconds)
        worst[workload] = max(worst.get(workload, 1.0), ratio)
    return worst


def check_divergence(payload: dict, *, factor: float = 2.0,
                     workloads: frozenset[str] = IRREGULAR_WORKLOADS
                     ) -> list[str]:
    """Failures list (empty = OK): at least one irregular workload must
    separate the backends by ``factor``."""
    worst = divergence(payload)
    hits = {w: r for w, r in worst.items()
            if w in workloads and r >= factor}
    if hits:
        return []
    measured = {w: r for w, r in worst.items() if w in workloads}
    return [
        f"no irregular workload separated cpu-pme from gpuvm by "
        f">= {factor:g}x (measured: "
        + (", ".join(f"{w}={r:.3g}x"
                     for w, r in sorted(measured.items())) or "none")
        + ")"]
