"""One generator per paper figure.

Each ``figN`` function runs the corresponding experiment(s) and returns a
result object whose ``render()`` prints the same rows/series the paper
reports.  Absolute numbers come from the simulated substrate; the *shapes*
(who wins, by what factor, where the cliffs/crossovers sit) are the
reproduction targets recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.arrays import Directory, ManagedArray
from repro.core.ce import CeKind, ComputationalElement
from repro.core.policies import (
    ExplorationLevel,
    MinTransferSizePolicy,
    MinTransferTimePolicy,
    RoundRobinPolicy,
    SchedulingContext,
    VectorStepPolicy,
)
from repro.gpu.kernel import ArrayAccess, Direction, KernelSpec, LaunchConfig
from repro.gpu.specs import GIB, MIB
from repro.net.topology import MBIT, NicSpec, Topology
from repro.bench.harness import (
    ExperimentResult,
    PAPER_SIZES_GB,
    run_grout,
    run_single_node,
    slowdown_series,
    step_ratios,
)
from repro.bench.report import format_series, format_table

#: Sizes used by the sweep figures; trimmed via the ``sizes_gb`` argument
#: for quick runs.
DEFAULT_SIZES_GB = PAPER_SIZES_GB


# --------------------------------------------------------------------------
# Fig. 1 — Black–Scholes on one node vs. input size
# --------------------------------------------------------------------------

@dataclass(slots=True)
class Fig1Result:
    sizes_gb: list[int]
    seconds: list[float]
    oversubscribed: list[bool]     # the paper's red bars
    capped: list[bool]

    def render(self) -> str:
        """The figure's rows as a text table."""
        rows = [(gb, s, osub, cap) for gb, s, osub, cap in
                zip(self.sizes_gb, self.seconds, self.oversubscribed,
                    self.capped)]
        return format_table(
            ["GB", "seconds", "oversubscribed", "hit 2.5h cap"], rows,
            title="Fig. 1 — Black-Scholes, single node (2x V100 16GB)")


def fig1(sizes_gb: tuple[int, ...] = DEFAULT_SIZES_GB, *,
         check: bool = False) -> Fig1Result:
    """Black–Scholes execution time vs. input size on one node."""
    results = [run_single_node("bs", gb * GIB, check=check)
               for gb in sizes_gb]
    return Fig1Result(
        sizes_gb=list(sizes_gb),
        seconds=[r.elapsed_seconds for r in results],
        oversubscribed=[r.oversubscription > 1.0 for r in results],
        capped=[not r.completed for r in results],
    )


# --------------------------------------------------------------------------
# Fig. 5 — the workloads' CE-dependency DAGs
# --------------------------------------------------------------------------

@dataclass(slots=True)
class Fig5Result:
    workloads: list[str]
    #: workload -> list of (ce label, [parent labels])
    edges: dict[str, list[tuple[str, list[str]]]] = field(
        default_factory=dict)
    sizes: dict[str, tuple[int, int]] = field(default_factory=dict)

    def render(self) -> str:
        """The DAG structure as indented text."""
        lines = ["Fig. 5 — workloads' CE dependencies (2 chunks)"]
        for wl in self.workloads:
            nodes, n_edges = self.sizes[wl]
            lines.append(f"  {wl.upper()}: {nodes} CEs, {n_edges} edges")
            for label, parents in self.edges[wl]:
                deps = ", ".join(parents) if parents else "(root)"
                lines.append(f"    {label:18s} <- {deps}")
        return "\n".join(lines)


def fig5(workloads: tuple[str, ...] = ("mle", "cg", "mv")) -> Fig5Result:
    """The Global DAG structure of each suite workload (tiny instance)."""
    from repro.core import GroutRuntime
    from repro.gpu import TEST_GPU_1GB
    from repro.workloads import make_workload

    out = Fig5Result(workloads=list(workloads))
    for name in workloads:
        kwargs = {"iterations": 2} if name == "cg" else {}
        wl = make_workload(name, 256 * MIB, n_chunks=2, **kwargs)
        rt = GroutRuntime(n_workers=2, gpu_spec=TEST_GPU_1GB)
        wl.build(rt)
        wl.run(rt)
        dag = rt.controller.dag
        out.edges[name] = [
            (ce.display_name,
             [p.display_name for p in dag.parents(ce)])
            for ce in dag.nodes()]
        out.sizes[name] = (dag.size, dag.edge_count())
        rt.sync()
    return out


# --------------------------------------------------------------------------
# Fig. 6a / 6b — slowdown vs the 4 GB baseline
# --------------------------------------------------------------------------

@dataclass(slots=True)
class Fig6Result:
    mode: str                       # "grcuda" (6a) or "grout" (6b)
    sizes_gb: list[int]
    workloads: list[str]
    seconds: dict[str, list[float]] = field(default_factory=dict)
    slowdowns: dict[str, list[float]] = field(default_factory=dict)
    steps: dict[str, list[float]] = field(default_factory=dict)

    def render(self) -> str:
        """Slowdown and step series per workload."""
        label = ("Fig. 6a — single node (GrCUDA)" if self.mode == "grcuda"
                 else "Fig. 6b — GrOUT, 2 nodes, offline vector-step")
        lines = [label + " — slowdown vs 4GB"]
        for wl in self.workloads:
            lines.append(format_series(
                f"  {wl} slowdown", self.sizes_gb, self.slowdowns[wl]))
            lines.append(format_series(
                f"  {wl} step    ", self.sizes_gb[1:], self.steps[wl], "x"))
        return "\n".join(lines)


def _fig6(mode: str, sizes_gb: tuple[int, ...],
          workloads: tuple[str, ...], check: bool) -> Fig6Result:
    out = Fig6Result(mode=mode, sizes_gb=list(sizes_gb),
                     workloads=list(workloads))
    for wl in workloads:
        results: list[ExperimentResult] = []
        for gb in sizes_gb:
            if mode == "grcuda":
                results.append(run_single_node(wl, gb * GIB, check=check))
            else:
                results.append(run_grout(wl, gb * GIB,
                                         policy="vector-step", check=check))
        out.seconds[wl] = [r.elapsed_seconds for r in results]
        out.slowdowns[wl] = slowdown_series(results)
        out.steps[wl] = step_ratios(results)
    return out


def fig6a(sizes_gb: tuple[int, ...] = DEFAULT_SIZES_GB,
          workloads: tuple[str, ...] = ("mle", "cg", "mv"), *,
          check: bool = False) -> Fig6Result:
    """Single-node slowdowns (the paper's UVM characterisation)."""
    return _fig6("grcuda", sizes_gb, workloads, check)


def fig6b(sizes_gb: tuple[int, ...] = DEFAULT_SIZES_GB,
          workloads: tuple[str, ...] = ("mle", "cg", "mv"), *,
          check: bool = False) -> Fig6Result:
    """GrOUT (2 nodes, vector-step) slowdowns: the flattened cliffs."""
    return _fig6("grout", sizes_gb, workloads, check)


# --------------------------------------------------------------------------
# Fig. 7 — GrOUT vs single node speedup per oversubscription factor
# --------------------------------------------------------------------------

@dataclass(slots=True)
class Fig7Result:
    sizes_gb: list[int]
    osf: list[float]
    workloads: list[str]
    single_seconds: dict[str, list[float]] = field(default_factory=dict)
    grout_seconds: dict[str, list[float]] = field(default_factory=dict)
    speedups: dict[str, list[float]] = field(default_factory=dict)
    single_capped: dict[str, list[bool]] = field(default_factory=dict)

    def render(self) -> str:
        """Speedup table with cap annotations."""
        lines = ["Fig. 7 — speedup of GrOUT (2 nodes) vs single node"]
        headers = ["workload"] + [f"{o:g}x" for o in self.osf]
        rows = []
        for wl in self.workloads:
            marks = ["*" if c else "" for c in self.single_capped[wl]]
            rows.append([wl] + [f"{s:.2f}{m}" for s, m in
                                zip(self.speedups[wl], marks)])
        lines.append(format_table(headers, rows))
        lines.append("(*) single-node run hit the 2.5h cap; the speedup "
                     "is a lower bound")
        return "\n".join(lines)


def fig7(sizes_gb: tuple[int, ...] = DEFAULT_SIZES_GB,
         workloads: tuple[str, ...] = ("mle", "cg", "mv"), *,
         check: bool = False) -> Fig7Result:
    """Speedup of GrOUT (2 nodes) over a single node per OSF."""
    out = Fig7Result(
        sizes_gb=list(sizes_gb),
        osf=[gb / 32 for gb in sizes_gb],
        workloads=list(workloads),
    )
    for wl in workloads:
        singles = [run_single_node(wl, gb * GIB, check=check)
                   for gb in sizes_gb]
        grouts = [run_grout(wl, gb * GIB, policy="vector-step", check=check)
                  for gb in sizes_gb]
        out.single_seconds[wl] = [r.elapsed_seconds for r in singles]
        out.grout_seconds[wl] = [r.elapsed_seconds for r in grouts]
        out.speedups[wl] = [s.elapsed_seconds / g.elapsed_seconds
                            for s, g in zip(singles, grouts)]
        out.single_capped[wl] = [not r.completed for r in singles]
    return out


# --------------------------------------------------------------------------
# Fig. 8 — online vs offline policies at 3× oversubscription
# --------------------------------------------------------------------------

@dataclass(slots=True)
class Fig8Result:
    footprint_gb: int
    workloads: list[str]
    #: workload -> policy label -> seconds
    seconds: dict[str, dict[str, float]] = field(default_factory=dict)

    def normalized(self, workload: str) -> dict[str, float]:
        """Times relative to round-robin (the paper's y-axis)."""
        base = self.seconds[workload]["round-robin"]
        return {k: v / base for k, v in self.seconds[workload].items()}

    def render(self) -> str:
        """Policy times relative to round-robin."""
        lines = [f"Fig. 8 — policies at {self.footprint_gb}GB "
                 "(3x OSF), relative to round-robin (lower is better)"]
        policies = list(next(iter(self.seconds.values())))
        headers = ["workload"] + policies
        rows = []
        for wl in self.workloads:
            norm = self.normalized(wl)
            rows.append([wl] + [f"{norm[p]:.2f}" for p in policies])
        lines.append(format_table(headers, rows))
        return "\n".join(lines)


def fig8(footprint_gb: int = 96,
         workloads: tuple[str, ...] = ("mle", "cg", "mv"),
         levels: tuple[ExplorationLevel, ...] = (
             ExplorationLevel.LOW, ExplorationLevel.MEDIUM,
             ExplorationLevel.HIGH), *,
         check: bool = False) -> Fig8Result:
    """Online vs offline policy comparison at a fixed footprint."""
    out = Fig8Result(footprint_gb=footprint_gb, workloads=list(workloads))
    for wl in workloads:
        cell: dict[str, float] = {}
        cell["round-robin"] = run_grout(
            wl, footprint_gb * GIB, policy="round-robin",
            check=check).elapsed_seconds
        cell["vector-step"] = run_grout(
            wl, footprint_gb * GIB, policy="vector-step",
            check=check).elapsed_seconds
        for pol in ("min-transfer-size", "min-transfer-time"):
            for level in levels:
                r = run_grout(wl, footprint_gb * GIB, policy=pol,
                              level=level, check=check)
                cell[f"{pol}/{level.name.lower()}"] = r.elapsed_seconds
        out.seconds[wl] = cell
    return out


# --------------------------------------------------------------------------
# Fig. 9 — controller scheduling overhead vs cluster size (real wall-clock)
# --------------------------------------------------------------------------

@dataclass(slots=True)
class Fig9Result:
    node_counts: list[int]
    #: policy -> mean microseconds per scheduling decision
    micros: dict[str, list[float]] = field(default_factory=dict)

    def render(self) -> str:
        """Mean decision microseconds per policy/size."""
        lines = ["Fig. 9 — scheduling overhead per CE (wall-clock "
                 "microseconds)"]
        headers = ["policy"] + [str(n) for n in self.node_counts]
        rows = [[pol] + [f"{u:.1f}" for u in series]
                for pol, series in self.micros.items()]
        lines.append(format_table(headers, rows))
        return "\n".join(lines)


def _fig9_context(n_nodes: int, n_arrays: int = 64,
                  seed: int = 0) -> tuple[SchedulingContext,
                                          list[ComputationalElement]]:
    """A synthetic CE stream over a populated directory."""
    workers = [f"worker{i}" for i in range(n_nodes)]
    topology = Topology()
    topology.add_node("controller", NicSpec(8000 * MBIT, max_flows=2))
    for w in workers:
        topology.add_node(w, NicSpec(4000 * MBIT))
    directory = Directory()
    arrays = []
    for i in range(n_arrays):
        a = ManagedArray(1, np.float32, virtual_nbytes=64 * MIB,
                         name=f"fig9.a{i}")
        state = directory.register(a)
        state.up_to_date = {"controller", workers[i % n_nodes]}
        arrays.append(a)
    kernel = KernelSpec("fig9_kernel", flops_per_byte=1.0)
    rng = np.random.default_rng(seed)
    ces = []
    for _ in range(512):
        params = [arrays[j] for j in rng.choice(n_arrays, size=4,
                                                replace=False)]
        accesses = tuple(
            ArrayAccess(p, Direction.IN if k else Direction.INOUT)
            for k, p in enumerate(params))
        ces.append(ComputationalElement(
            kind=CeKind.KERNEL, accesses=accesses, kernel=kernel,
            config=LaunchConfig((64,), (256,)), args=tuple(params)))
    ctx = SchedulingContext(workers=workers, directory=directory,
                            topology=topology)
    return ctx, ces


def fig9(node_counts: tuple[int, ...] = (2, 4, 8, 16, 32, 64, 128, 256),
         repeats: int = 3) -> Fig9Result:
    """Wall-clock cost of one scheduling decision per policy/cluster size."""
    policies = {
        "round-robin": lambda: RoundRobinPolicy(),
        "vector-step": lambda: VectorStepPolicy([1, 2, 3]),
        "min-transfer-size": lambda: MinTransferSizePolicy(),
        "min-transfer-time": lambda: MinTransferTimePolicy(),
    }
    out = Fig9Result(node_counts=list(node_counts))
    for name, factory in policies.items():
        series = []
        for n in node_counts:
            ctx, ces = _fig9_context(n)
            best = float("inf")
            for _ in range(repeats):
                policy = factory()
                start = time.perf_counter()
                for ce in ces:
                    policy.assign(ce, ctx)
                elapsed = time.perf_counter() - start
                best = min(best, elapsed / len(ces))
            series.append(best * 1e6)
        out.micros[name] = series
    return out
