"""Plain-text rendering of experiment results (the harness's 'figures')."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Fixed-width ASCII table; floats get 3 significant digits."""
    def fmt(cell: object) -> str:
        if isinstance(cell, bool):
            return "yes" if cell else "no"
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 1000:
                return f"{cell:,.0f}"
            return f"{cell:.3g}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def format_series(label: str, xs: Sequence[object],
                  ys: Sequence[float], unit: str = "") -> str:
    """One named series as ``label: x=y`` pairs (a figure's data line)."""
    pairs = " ".join(f"{x}={y:.4g}{unit}" for x, y in zip(xs, ys))
    return f"{label}: {pairs}"
