"""Parameter sweeps with CSV output.

One call fans a workload across footprints × modes × policies × worker
counts and emits flat records — the raw material for any plot or
spreadsheet, and what the `python -m repro sweep` subcommand writes.
"""

from __future__ import annotations

import csv
from dataclasses import asdict
from typing import IO, Iterable, Sequence

from repro.bench.harness import (
    ExperimentResult,
    RUN_CAP_SECONDS,
    run_grout,
    run_single_node,
)
from repro.gpu.specs import GIB

#: Column order of the CSV output (ExperimentResult's fields).
CSV_FIELDS = ["workload", "mode", "footprint_bytes", "n_workers",
              "policy", "elapsed_seconds", "completed", "verified",
              "oversubscription"]


def sweep(workloads: Sequence[str],
          sizes_gb: Sequence[float],
          modes: Sequence[str] = ("grcuda", "grout"),
          policies: Sequence[str] = ("vector-step",),
          worker_counts: Sequence[int] = (2,),
          *,
          cap: float = RUN_CAP_SECONDS,
          check: bool = False,
          seed: int = 0,
          repeats: int = 1) -> Iterable[ExperimentResult]:
    """Yield one result per configuration, lazily (sweeps can be long).

    ``repeats`` forwards the paper's §V-A repetition/averaging protocol
    to every run.
    """
    for workload in workloads:
        for gb in sizes_gb:
            footprint = int(gb * GIB)
            for mode in modes:
                if mode == "grcuda":
                    yield run_single_node(workload, footprint, cap=cap,
                                          check=check, seed=seed,
                                          repeats=repeats)
                    continue
                for policy in policies:
                    for workers in worker_counts:
                        yield run_grout(
                            workload, footprint, n_workers=workers,
                            policy=policy, cap=cap, check=check,
                            seed=seed, repeats=repeats)


def write_csv(results: Iterable[ExperimentResult],
              destination: "str | IO[str]") -> int:
    """Write results as CSV; returns the number of rows written."""
    def emit(fh) -> int:
        writer = csv.DictWriter(fh, fieldnames=CSV_FIELDS)
        writer.writeheader()
        rows = 0
        for result in results:
            record = asdict(result)
            writer.writerow({k: record[k] for k in CSV_FIELDS})
            rows += 1
        return rows

    if isinstance(destination, str):
        with open(destination, "w", newline="", encoding="utf-8") as fh:
            return emit(fh)
    return emit(destination)
