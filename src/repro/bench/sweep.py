"""Parameter sweeps with CSV output.

One call fans a workload across footprints × modes × policies × worker
counts and emits flat records — the raw material for any plot or
spreadsheet, and what the `python -m repro sweep` subcommand writes.
"""

from __future__ import annotations

import csv
from dataclasses import asdict
from typing import IO, Iterable, Sequence

from repro.bench.harness import (
    ExperimentResult,
    RUN_CAP_SECONDS,
    run_grout,
    run_single_node,
)
from repro.core.config import RuntimeConfig
from repro.gpu.specs import GIB

#: Column order of the CSV output (ExperimentResult's fields).
CSV_FIELDS = ["workload", "mode", "footprint_bytes", "n_workers",
              "policy", "elapsed_seconds", "completed", "verified",
              "oversubscription"]


def sweep(workloads: Sequence[str],
          sizes_gb: Sequence[float],
          modes: Sequence[str] = ("grcuda", "grout"),
          policies: Sequence[str] = ("vector-step",),
          worker_counts: Sequence[int] = (2,),
          *,
          config: "RuntimeConfig | None" = None,
          cap: float = RUN_CAP_SECONDS,
          check: bool = False,
          seed: int = 0,
          repeats: int = 1) -> Iterable[ExperimentResult]:
    """Yield one result per configuration, lazily (sweeps can be long).

    ``config`` seeds the shared runtime knobs (uvm backend, chunking,
    ...) for every cell; the swept dimensions (mode/policy/workers) are
    overlaid per cell on top of it.  ``repeats`` forwards the paper's
    §V-A repetition/averaging protocol to every run.
    """
    base = config if config is not None else RuntimeConfig(seed=seed)
    for workload in workloads:
        for gb in sizes_gb:
            footprint = int(gb * GIB)
            for mode in modes:
                if mode == "grcuda":
                    yield run_single_node(
                        workload, footprint,
                        config=base.merge(mode="grcuda"),
                        cap=cap, check=check, repeats=repeats)
                    continue
                for policy in policies:
                    for workers in worker_counts:
                        yield run_grout(
                            workload, footprint,
                            config=base.merge(mode="grout",
                                              policy=policy,
                                              n_workers=workers),
                            cap=cap, check=check, repeats=repeats)


def write_csv(results: Iterable[ExperimentResult],
              destination: "str | IO[str]") -> int:
    """Write results as CSV; returns the number of rows written."""
    def emit(fh) -> int:
        writer = csv.DictWriter(fh, fieldnames=CSV_FIELDS)
        writer.writeheader()
        rows = 0
        for result in results:
            record = asdict(result)
            writer.writerow({k: record[k] for k in CSV_FIELDS})
            rows += 1
        return rows

    if isinstance(destination, str):
        with open(destination, "w", newline="", encoding="utf-8") as fh:
            return emit(fh)
    return emit(destination)
