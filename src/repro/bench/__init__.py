"""Figure-reproduction harness: drivers, per-figure generators, reporting."""

from repro.bench.figures import (
    Fig1Result,
    Fig5Result,
    Fig6Result,
    Fig7Result,
    Fig8Result,
    Fig9Result,
    fig1,
    fig5,
    fig6a,
    fig6b,
    fig7,
    fig8,
    fig9,
)
from repro.bench.harness import (
    PAPER_SIZES_GB,
    RUN_CAP_SECONDS,
    ExperimentResult,
    page_size_for,
    run_grout,
    run_single_node,
    slowdown_series,
    step_ratios,
)
from repro.bench.compare import Comparison, Drift, compare_figures
from repro.bench.export import figure_to_dict, write_figure_json
from repro.bench.chrometrace import (
    time_breakdown,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.bench.report import format_series, format_table
from repro.bench.runreport import (
    RunReport,
    json_run_report,
    report_for,
    write_run_report,
)
from repro.bench.sweep import sweep, write_csv
from repro.bench.timeline import (
    TimelineOptions,
    render_timeline,
    utilisation_report,
)

__all__ = [
    "ExperimentResult",
    "Fig1Result",
    "Fig5Result",
    "Fig6Result",
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
    "PAPER_SIZES_GB",
    "RUN_CAP_SECONDS",
    "fig1",
    "fig5",
    "fig6a",
    "fig6b",
    "fig7",
    "fig8",
    "fig9",
    "RunReport",
    "TimelineOptions",
    "Comparison",
    "Drift",
    "compare_figures",
    "figure_to_dict",
    "format_series",
    "format_table",
    "json_run_report",
    "render_timeline",
    "report_for",
    "write_run_report",
    "sweep",
    "time_breakdown",
    "to_chrome_trace",
    "utilisation_report",
    "write_chrome_trace",
    "write_csv",
    "write_figure_json",
    "page_size_for",
    "run_grout",
    "run_single_node",
    "slowdown_series",
    "step_ratios",
]
