"""Export simulation traces to Chrome's trace-event format.

``chrome://tracing`` / Perfetto open the resulting JSON directly, giving
an interactive timeline of every GPU stream and network link in a run —
the heavyweight sibling of :mod:`repro.bench.timeline`'s ASCII charts.
"""

from __future__ import annotations

import json
from typing import IO

from repro.obs import MetricsRegistry, metric_counter_events
from repro.sim import Tracer

#: Category -> Chrome trace colour name (cname).
_COLOURS = {
    "kernel": "thread_state_running",
    "transfer": "thread_state_iowait",
    "migration": "thread_state_uninterruptible",
    "prefetch": "rail_load",
    "sched": "grey",
    "fault": "terrible",
    "retry": "bad",
    "chunk": "thread_state_runnable",
    "relay": "rail_response",
}


def to_chrome_trace(tracer: Tracer, *,
                    time_unit: float = 1e6,
                    metrics: MetricsRegistry | None = None) -> dict:
    """Convert a tracer's spans to a Chrome trace-event object.

    Simulated seconds are scaled by ``time_unit`` into the microseconds
    the format expects.  Lanes become (pid, tid) pairs: the part before
    the first ``/`` (the node, or ``net``) is the process, the full lane
    the thread, so nodes group naturally in the viewer.

    With ``metrics``, every counter and gauge in the registry adds a
    Chrome *counter track* (``"ph": "C"``) under a dedicated ``metrics``
    process — plotted values over simulated time next to the spans.
    """
    events = []
    lanes = {lane: i for i, lane in enumerate(tracer.lanes())}
    pids: dict[str, int] = {}
    for lane, tid in lanes.items():
        group = lane.split("/", 1)[0]
        pid = pids.setdefault(group, len(pids))
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": lane},
        })
    for group, pid in pids.items():
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": group},
        })
    for span in tracer.spans:
        group = span.lane.split("/", 1)[0]
        event = {
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "pid": pids[group],
            "tid": lanes[span.lane],
            "ts": span.start * time_unit,
            "dur": max(span.duration * time_unit, 0.001),
            "args": dict(span.meta),
        }
        colour = _COLOURS.get(span.category)
        if colour:
            event["cname"] = colour
        events.append(event)
    if metrics is not None:
        metrics_pid = len(pids)
        events.append({
            "name": "process_name", "ph": "M", "pid": metrics_pid,
            "tid": 0, "args": {"name": "metrics"},
        })
        events.extend(metric_counter_events(
            metrics, pid=metrics_pid, time_unit=time_unit))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, destination: "str | IO[str]",
                       **kwargs) -> None:
    """Serialise a tracer to a Chrome-trace JSON file or stream."""
    payload = to_chrome_trace(tracer, **kwargs)
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
    else:
        json.dump(payload, destination)


def time_breakdown(tracer: Tracer) -> dict[str, float]:
    """Busy seconds per category across the whole trace (union per lane).

    The categories double-count nothing within a lane, but parallel lanes
    add up — this is aggregate *work*, not the makespan.
    """
    breakdown: dict[str, float] = {}
    for span in tracer.spans:
        breakdown[span.category] = breakdown.get(span.category, 0.0) \
            + span.duration
    return breakdown
