"""Scheduling-scale benchmark: synthetic DAGs at 10k–1M CEs.

GrOUT's pitch (and GrCUDA's before it) is that scheduling overhead stays
negligible as workloads scale out — Fig. 9 reports microseconds per
decision.  This module measures the *whole* reproduction stack at scale:
how fast the controller pipeline, the dependency DAG, the intra-node
schedulers and the event engine chew through synthetic workloads of
10k–1M computational elements, in host wall-clock.

Three DAG shapes cover the regimes long-horizon runtimes meet:

``wide``
    Epochs of fan-out: one host write of a shared input followed by a
    wide wave of reader kernels — stresses per-buffer reader sets and
    the WAR frontier scan.
``deep``
    A single read-modify-write chain — stresses ancestor-set
    maintenance, prune cadence and the P2P data-movement path.
``iterative``
    A CG-shaped loop over a fixed buffer set with periodic host reads —
    the long-horizon session profile (bounded live DAG, millions of
    events).

Results are serialised through the standard figure-export machinery
(:func:`repro.bench.export.figure_to_dict`) into ``BENCH_scale.json`` —
the repository's recorded perf trajectory.  ``check_regression`` diffs a
fresh run against that committed baseline so CI can fail on a
wall-clock regression (see ``benchmarks/bench_scale.py --check``).

Tracing is disabled for these runs (a million spans is a memory
benchmark, not a scheduling one); metrics and the per-CE profiler stay
on — they are part of the hot path being measured.
"""

from __future__ import annotations

import dataclasses
import sys
import time
from dataclasses import dataclass, field

from repro.cluster.cluster import paper_cluster
from repro.gpu.kernel import ArrayAccess, Direction, KernelSpec
from repro.gpu.specs import KIB, MIB, TEST_GPU_1GB

__all__ = ["ScaleRunResult", "ScaleReport", "WORKLOADS",
           "run_scale_once", "run_scale", "run_engine_microbench",
           "profile_run", "check_regression", "ENGINE_MICROBENCH_EVENTS"]

#: Benchmark cluster: the paper's three-worker setup with small GPUs so
#: the footprint stays comfortably resident (scheduling, not eviction,
#: is what this benchmark measures).
N_WORKERS = 3


@dataclass(frozen=True, slots=True)
class ScaleRunResult:
    """One (workload, size) measurement."""

    workload: str
    ces: int                 # CEs actually scheduled
    wall_seconds: float      # host wall-clock, build + drain
    sim_seconds: float       # simulated makespan
    events: int              # controller-engine events processed
    events_per_sec: float
    ces_per_sec: float
    peak_rss_mib: float      # process peak RSS after the run
    shards: int = 0          # shard processes (0 = single-process mode)


@dataclass(slots=True)
class ScaleReport:
    """The perf-trajectory record written to ``BENCH_scale.json``."""

    schema: str = "grout-bench-scale/1"
    python: str = ""
    quick: bool = False
    results: list[ScaleRunResult] = field(default_factory=list)
    #: Optional earlier capture kept alongside for the history books
    #: (e.g. the pre-optimization numbers this PR's speedup is measured
    #: against).  Same shape as ``results``, plain dicts.
    reference: list[dict] | None = None
    #: Optional cProfile capture: ``{"workload@ces": [row, ...]}`` with
    #: the top-N functions by total time (see :func:`profile_run`).
    profile: dict | None = None


# -- synthetic workloads -------------------------------------------------------

def _kernel(name: str, directions: tuple[Direction, ...],
            flops_per_byte: float = 0.5) -> KernelSpec:
    """A kernel whose parameter directions are fixed per position."""
    def access_fn(args):
        return [ArrayAccess(a, d) for a, d in zip(args, directions)]
    return KernelSpec(name, flops_per_byte=flops_per_byte,
                      access_fn=access_fn)


def build_wide(rt, n: int, width: int = 256) -> int:
    """Epochs of one shared write fanning out to ``width`` readers.

    Every epoch's host write WARs against the previous epoch's full
    reader wave — the widest frontier scan the DAG ever faces.
    """
    shared = rt.device_array(8, virtual_nbytes=4 * MIB, name="w.shared")
    outs = [rt.device_array(8, virtual_nbytes=256 * KIB, name=f"w.out{i}")
            for i in range(width)]
    fan = _kernel("fan", (Direction.IN, Direction.OUT))
    scheduled = 0
    while scheduled < n:
        rt.host_write(shared, label="w.init")
        scheduled += 1
        wave = min(width, n - scheduled)
        for i in range(wave):
            rt.launch(fan, 8, 128, (shared, outs[i]))
        scheduled += wave
    return scheduled


def build_deep(rt, n: int) -> int:
    """One read-modify-write chain of ``n`` kernels on a single buffer.

    Round-robin placement ping-pongs the accumulator between workers, so
    every link exercises the P2P mover and the coherence directory.
    """
    accum = rt.device_array(8, virtual_nbytes=1 * MIB, name="d.accum")
    step = _kernel("step", (Direction.INOUT,))
    rt.host_write(accum, label="d.init")
    for _ in range(n - 1):
        rt.launch(step, 8, 128, (accum,))
    return n


def build_iterative(rt, n: int, sync_every: int = 256) -> int:
    """A CG-shaped loop: four kernels per iteration over a fixed buffer
    set, with a periodic host read as the convergence check."""
    mat = rt.device_array(8, virtual_nbytes=8 * MIB, name="i.A")
    vecs = {name: rt.device_array(8, virtual_nbytes=1 * MIB,
                                  name=f"i.{name}")
            for name in ("p", "q", "r", "x")}
    spmv = _kernel("spmv", (Direction.IN, Direction.IN, Direction.OUT))
    axpy = _kernel("axpy", (Direction.IN, Direction.INOUT))
    resid = _kernel("resid", (Direction.IN, Direction.INOUT))
    update = _kernel("update", (Direction.IN, Direction.INOUT))
    rt.host_write(list(vecs.values()) + [mat], label="i.init")
    scheduled, iteration = 1, 0
    while scheduled + 4 <= n:
        rt.launch(spmv, 8, 128, (mat, vecs["p"], vecs["q"]))
        rt.launch(axpy, 8, 128, (vecs["q"], vecs["x"]))
        rt.launch(resid, 8, 128, (vecs["q"], vecs["r"]))
        rt.launch(update, 8, 128, (vecs["r"], vecs["p"]))
        scheduled += 4
        iteration += 1
        if iteration % sync_every == 0 and scheduled < n:
            rt.host_read(vecs["r"], label="i.check")
            scheduled += 1
    return scheduled


WORKLOADS = {
    "wide": build_wide,
    "deep": build_deep,
    "iterative": build_iterative,
}


# -- measurement ---------------------------------------------------------------

def _peak_rss_mib() -> float:
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0.0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    if sys.platform == "darwin":  # pragma: no cover
        return rss / (1024 * 1024)
    return rss / 1024


def run_scale_once(workload: str, ces: int, *,
                   n_workers: int = N_WORKERS,
                   shards: int | None = None,
                   shard_window: float | None = None) -> ScaleRunResult:
    """Run one synthetic workload end to end and measure throughput.

    The clock covers scheduling *and* draining: ``launch`` runs
    Algorithm 1 eagerly, ``sync`` runs the event engine until every CE
    completed — wall-clock per CE is the full-stack cost.  ``shards``
    runs the worker nodes in that many shard processes (conservative-
    window parallel simulation); the reported event count then covers
    the controller engine only — compare sharded rows against sharded
    baselines.
    """
    from repro.core.policies import RoundRobinPolicy
    from repro.core.runtime import GroutRuntime

    build = WORKLOADS[workload]
    cluster = paper_cluster(n_workers, gpu_spec=TEST_GPU_1GB)
    cluster.tracer.enabled = False
    rt = GroutRuntime(cluster, policy=RoundRobinPolicy(), shards=shards,
                      shard_window=shard_window)
    start = time.perf_counter()
    scheduled = build(rt, ces)
    rt.sync()
    wall = time.perf_counter() - start
    events = rt.engine.events_processed
    rt.shutdown()
    return ScaleRunResult(
        workload=workload,
        ces=scheduled,
        wall_seconds=wall,
        sim_seconds=rt.engine.now,
        events=events,
        events_per_sec=events / wall if wall > 0 else 0.0,
        ces_per_sec=scheduled / wall if wall > 0 else 0.0,
        peak_rss_mib=_peak_rss_mib(),
        shards=shards or 0,
    )


def _run_in_subprocess(workload: str, ces: int, n_workers: int,
                       shards: int | None = None,
                       shard_window: float | None = None
                       ) -> ScaleRunResult:
    """Fork one measurement so peak RSS is per-run, not cumulative."""
    import multiprocessing as mp
    ctx = mp.get_context("fork")
    parent, child = ctx.Pipe(duplex=False)

    def body(conn):
        # The measurement child is a dedicated process, so tune the
        # cyclic collector the way a long-lived scheduler deployment
        # would: the object graph is overwhelmingly refcount-managed
        # (events, CEs and DAG nodes form no cycles on the hot path),
        # and the default gen0 threshold of 700 allocations makes the
        # collector rescan a million-node graph thousands of times per
        # run — ~25% of sharded wall-clock, with no measured RSS cost.
        import gc
        gc.set_threshold(1_000_000, 100, 100)
        result = run_scale_once(workload, ces, n_workers=n_workers,
                                shards=shards, shard_window=shard_window)
        conn.send(dataclasses.asdict(result))
        conn.close()

    proc = ctx.Process(target=body, args=(child,))
    proc.start()
    child.close()
    payload = parent.recv()
    proc.join()
    if proc.exitcode != 0:  # pragma: no cover - child crashed
        raise RuntimeError(f"bench child for {workload}@{ces} exited "
                           f"with {proc.exitcode}")
    return ScaleRunResult(**payload)


def run_scale(sizes: tuple[int, ...],
              workloads: tuple[str, ...] | None = None, *,
              quick: bool = False,
              isolate: bool = True,
              n_workers: int = N_WORKERS,
              shards: int | None = None,
              shard_window: float | None = None,
              repeats: int = 1,
              log=None) -> ScaleReport:
    """Sweep every (workload, size) pair into a :class:`ScaleReport`.

    ``isolate`` forks each run (POSIX) so per-run peak RSS is accurate;
    in-process fallback keeps the harness usable everywhere.
    ``repeats`` measures each pair several times and records the run
    with the *median* events/sec — what the CI gate compares — so a
    single noisy-neighbour run can't fail (or mask) a regression.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    names = tuple(workloads) if workloads else tuple(WORKLOADS)
    for name in names:
        if name not in WORKLOADS:
            raise KeyError(f"unknown workload {name!r}; "
                           f"have {sorted(WORKLOADS)}")
    can_fork = isolate and sys.platform != "win32"
    report = ScaleReport(
        python=".".join(map(str, sys.version_info[:3])), quick=quick)
    for ces in sizes:
        for name in names:
            if log is not None:
                log(f"running {name} @ {ces:,} CEs ..." +
                    (f" (x{repeats})" if repeats > 1 else ""))
            runs = []
            for _ in range(repeats):
                if can_fork:
                    runs.append(_run_in_subprocess(
                        name, ces, n_workers, shards, shard_window))
                else:  # pragma: no cover - exercised on win32 only
                    runs.append(run_scale_once(
                        name, ces, n_workers=n_workers, shards=shards,
                        shard_window=shard_window))
            runs.sort(key=lambda r: r.events_per_sec)
            result = runs[len(runs) // 2]
            report.results.append(result)
            if log is not None:
                log(f"  {result.wall_seconds:8.2f}s wall   "
                    f"{result.ces_per_sec:10,.0f} CEs/s   "
                    f"{result.events_per_sec:12,.0f} events/s   "
                    f"{result.peak_rss_mib:7.1f} MiB peak")
    return report


# -- engine microbenchmark -----------------------------------------------------

#: Deliveries churned by :func:`run_engine_microbench` — half through the
#: generator/Timeout path, half through ``schedule_call`` chains.
ENGINE_MICROBENCH_EVENTS = 400_000


def run_engine_microbench(events: int = ENGINE_MICROBENCH_EVENTS,
                          fanout: int = 64) -> ScaleRunResult:
    """Pure event-core churn: no controller, no DAG, no GPU models.

    Isolates the engine's own queue machinery so the perf gate can tell
    an engine regression apart from a scheduler one.  ``fanout`` rollers
    churn timeouts two ways — the classic generator/Timeout path for the
    first half of the deliveries, ``schedule_call`` chains for the second
    half — so a slowdown in either lane moves the number.  Reported as a
    pseudo-workload row (``workload="engine"``, ``ces=events``) so the
    relative ``check_regression`` gate covers it automatically.
    """
    from repro.sim import Engine

    engine = Engine()
    half = events // 2

    def roller(i: int):
        delay = 0.001 * (1 + i % 7)
        while engine.events_processed < half:
            yield engine.timeout(delay)

    for i in range(fanout):
        engine.process(roller(i), name=f"roll{i}")

    def hop(_arg):
        if engine.events_processed < events:
            engine.schedule_call(0.001, hop)

    start = time.perf_counter()
    engine.run()
    for i in range(fanout):
        engine.schedule_call(0.001 * (1 + i % 7), hop)
    engine.run()
    wall = time.perf_counter() - start
    churned = engine.events_processed
    return ScaleRunResult(
        workload="engine",
        ces=events,
        wall_seconds=wall,
        sim_seconds=engine.now,
        events=churned,
        events_per_sec=churned / wall if wall > 0 else 0.0,
        ces_per_sec=0.0,
        peak_rss_mib=_peak_rss_mib(),
    )


# -- profiling -----------------------------------------------------------------

def profile_run(workload: str, ces: int, *, top: int = 25,
                n_workers: int = N_WORKERS,
                shards: int | None = None,
                shard_window: float | None = None) -> list[dict]:
    """cProfile one in-process run; top-``top`` functions by total time.

    Rows are plain dicts (function, file:line, ncalls, tottime, cumtime)
    ready for the ``profile`` section of ``BENCH_scale.json`` — a
    shareable where-does-the-time-go capture alongside the numbers.
    """
    import cProfile
    import pstats

    prof = cProfile.Profile()
    prof.enable()
    try:
        run_scale_once(workload, ces, n_workers=n_workers, shards=shards,
                       shard_window=shard_window)
    finally:
        prof.disable()
    stats = pstats.Stats(prof)
    stats.sort_stats("tottime")
    rows = []
    for func in stats.fcn_list[:top]:
        cc, nc, tt, ct, _callers = stats.stats[func]
        filename, line, name = func
        rows.append({
            "function": name,
            "file": f"{filename}:{line}",
            "ncalls": nc,
            "tottime": round(tt, 4),
            "cumtime": round(ct, 4),
        })
    return rows


# -- regression gate -----------------------------------------------------------

def check_regression(baseline: dict, current: dict, *,
                     factor: float = 2.0) -> list[str]:
    """Compare two ``grout-bench-scale/1`` payloads; returns failures.

    Runs are matched on (workload, ces, shards) — a sharded row is a
    different measurement than a single-process one (its event count
    covers the controller engine only) and must only ever gate against a
    sharded baseline.  A matched pair fails when events/sec dropped
    below ``1/factor`` of the baseline's; wall-clock is reported
    alongside for context (it tracks events/sec for a fixed workload,
    but events/sec is the machine-height-independent form).  Pairs only
    one side has are ignored — quick runs check a subset of the
    committed sweep.
    """
    def index(payload: dict) -> dict:
        return {(r["workload"], r["ces"], r.get("shards", 0)): r
                for r in payload.get("results", [])}

    base, cur = index(baseline), index(current)
    failures = []
    for key in sorted(set(base) & set(cur)):
        b, c = base[key], cur[key]
        if c["events_per_sec"] * factor < b["events_per_sec"]:
            name = f"{key[0]}@{key[1]}" + (
                f"/shards{key[2]}" if key[2] else "")
            failures.append(
                f"{name}: {c['events_per_sec']:,.0f} events/s vs "
                f"baseline {b['events_per_sec']:,.0f} "
                f"(> {factor:g}x regression; wall "
                f"{c['wall_seconds']:.2f}s vs {b['wall_seconds']:.2f}s)")
    if not set(base) & set(cur):
        failures.append("no overlapping (workload, ces, shards) tuples "
                        "between baseline and current run")
    return failures
