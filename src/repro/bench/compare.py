"""Compare two figure-JSON exports and report drift.

Pairs with ``python -m repro figure N --json``: export a baseline once,
re-export after a model/calibration change, and diff them — the numeric
complement of the shape assertions in ``tests/integration``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Drift:
    """One value that moved between two exports of the same figure."""

    path: str          # e.g. "speedups.mv[3]"
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        """current / baseline (``inf`` when the baseline is zero)."""
        if self.baseline == 0:
            return float("inf") if self.current else 1.0
        return self.current / self.baseline

    def __str__(self) -> str:
        return (f"{self.path}: {self.baseline:.6g} -> "
                f"{self.current:.6g} ({self.ratio:.3g}x)")


@dataclass(slots=True)
class Comparison:
    """Outcome of diffing two figure exports."""

    figure: str
    drifts: list[Drift] = field(default_factory=list)
    structural: list[str] = field(default_factory=list)

    def within(self, tolerance: float) -> bool:
        """True when every numeric ratio lies in [1/t, t] and the
        structure matches."""
        if self.structural:
            return False
        lo, hi = 1.0 / tolerance, tolerance
        return all(lo <= d.ratio <= hi for d in self.drifts)

    def worst(self) -> Drift | None:
        """The drift with the largest deviation from 1x."""
        if not self.drifts:
            return None
        def severity(d: Drift) -> float:
            if 0 < d.ratio < float("inf"):
                return abs(math.log(d.ratio))
            return float("inf")

        return max(self.drifts, key=severity)


def _walk(path: str, base, cur, out: Comparison) -> None:
    if isinstance(base, dict) and isinstance(cur, dict):
        for key in base:
            if key not in cur:
                out.structural.append(f"missing key {path}.{key}")
                continue
            _walk(f"{path}.{key}" if path else key, base[key], cur[key],
                  out)
        for key in cur:
            if key not in base:
                out.structural.append(f"new key {path}.{key}")
    elif isinstance(base, list) and isinstance(cur, list):
        if len(base) != len(cur):
            out.structural.append(
                f"{path}: length {len(base)} -> {len(cur)}")
            return
        for i, (b, c) in enumerate(zip(base, cur)):
            _walk(f"{path}[{i}]", b, c, out)
    elif isinstance(base, bool) or isinstance(cur, bool):
        if base != cur:
            out.structural.append(f"{path}: {base} -> {cur}")
    elif isinstance(base, (int, float)) and isinstance(cur, (int, float)):
        if float(base) != float(cur):
            out.drifts.append(Drift(path, float(base), float(cur)))
    elif base != cur:
        out.structural.append(f"{path}: {base!r} -> {cur!r}")


def compare_figures(baseline: "str | dict",
                    current: "str | dict") -> Comparison:
    """Diff two figure exports (paths to JSON files, or parsed dicts)."""
    def load(source):
        if isinstance(source, str):
            with open(source, "r", encoding="utf-8") as fh:
                return json.load(fh)
        return source

    base, cur = load(baseline), load(current)
    comparison = Comparison(figure=str(base.get("figure", "?")))
    if base.get("figure") != cur.get("figure"):
        comparison.structural.append(
            f"figure type {base.get('figure')} vs {cur.get('figure')}")
        return comparison
    _walk("", base, cur, comparison)
    return comparison
