"""Post-run reports: where did the simulated time go?

Aggregates a runtime's tracer, controller stats and UVM state into one
structured record — the answer to "why was this run slow" without opening
a trace viewer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.chrometrace import time_breakdown
from repro.bench.report import format_table


@dataclass(slots=True)
class RunReport:
    """Aggregated accounting of one simulated run."""

    makespan_seconds: float = 0.0
    busy_by_category: dict[str, float] = field(default_factory=dict)
    network_bytes: int = 0
    network_transfers: int = 0
    p2p_transfers: int = 0
    ces_scheduled: int = 0
    mean_decision_micros: float = 0.0
    node_oversubscription: dict[str, float] = field(default_factory=dict)
    #: node -> host-link GiB (cold + refaults + writebacks + prefetches)
    uvm_link_gib: dict[str, float] = field(default_factory=dict)
    thrashing_launches: int = 0
    top_kernels: list[tuple[str, int, float]] = field(
        default_factory=list)      # (name, launches, total seconds)

    def render(self) -> str:
        """The report as stacked text tables."""
        gib = 1024 ** 3
        rows = [
            ("makespan", f"{self.makespan_seconds:.4g} s"),
            ("CEs scheduled", self.ces_scheduled),
            ("mean decision cost", f"{self.mean_decision_micros:.1f} us"),
            ("network volume",
             f"{self.network_bytes / gib:.2f} GiB over "
             f"{self.network_transfers} transfers "
             f"({self.p2p_transfers} P2P)"),
        ]
        for node, osf in sorted(self.node_oversubscription.items()):
            rows.append((f"OSF on {node}", f"{osf:.3g}x"))
        for node, link in sorted(self.uvm_link_gib.items()):
            rows.append((f"UVM link traffic on {node}",
                         f"{link:.2f} GiB"))
        if self.thrashing_launches:
            rows.append(("thrashing launches", self.thrashing_launches))
        parts = [format_table(["metric", "value"], rows,
                              title="Run report")]
        if self.busy_by_category:
            parts.append(format_table(
                ["category", "aggregate busy seconds"],
                sorted(self.busy_by_category.items(),
                       key=lambda kv: -kv[1]),
                title="Where the simulated time went"))
        if self.top_kernels:
            parts.append(format_table(
                ["kernel", "launches", "total seconds"],
                self.top_kernels,
                title="Top kernels by simulated time"))
        return "\n\n".join(parts)


def report_for(runtime) -> RunReport:
    """Build a :class:`RunReport` from a GrOUT or GrCUDA runtime."""
    report = RunReport()
    tracer = runtime.tracer
    if tracer is not None:
        report.makespan_seconds = tracer.makespan()
        report.busy_by_category = time_breakdown(tracer)

    controller = getattr(runtime, "controller", None)
    if controller is not None:     # GrOUT
        stats = controller.stats
        report.ces_scheduled = stats.ces_scheduled
        report.mean_decision_micros = stats.mean_decision_seconds * 1e6
        fabric = runtime.cluster.fabric
        report.network_bytes = fabric.bytes_moved
        report.network_transfers = fabric.transfer_count
        report.p2p_transfers = stats.p2p_transfers
        report.node_oversubscription = {
            w.name: w.oversubscription()
            for w in runtime.cluster.workers}
        gib = 1024 ** 3
        for w in runtime.cluster.workers:
            if w.uvm is not None:
                report.uvm_link_gib[w.name] = \
                    w.uvm.stats.link_bytes / gib
                report.thrashing_launches += \
                    w.uvm.stats.thrashing_launches
        schedulers = controller.workers.values()
    else:                          # GrCUDA
        node = runtime.node
        report.node_oversubscription = {
            node.name: node.oversubscription()}
        if node.uvm is not None:
            report.uvm_link_gib[node.name] = \
                node.uvm.stats.link_bytes / 1024 ** 3
            report.thrashing_launches = \
                node.uvm.stats.thrashing_launches
        report.ces_scheduled = runtime.dag.size
        schedulers = [runtime.scheduler]

    totals: dict[str, tuple[int, float]] = {}
    for scheduler in schedulers:
        for ce, cost in scheduler.kernel_costs:
            assert ce.kernel is not None
            count, seconds = totals.get(ce.kernel.name, (0, 0.0))
            totals[ce.kernel.name] = (count + 1,
                                      seconds + cost.duration)
    report.top_kernels = sorted(
        ((name, count, seconds)
         for name, (count, seconds) in totals.items()),
        key=lambda row: -row[2])[:10]
    return report
