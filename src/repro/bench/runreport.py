"""Post-run reports: where did the simulated time go?

Aggregates a runtime's tracer, controller stats and UVM state into one
structured record — the answer to "why was this run slow" without opening
a trace viewer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO

from repro.bench.chrometrace import time_breakdown
from repro.bench.report import format_table
from repro.obs import build_run_summary, registry_to_dict


@dataclass(slots=True)
class RunReport:
    """Aggregated accounting of one simulated run."""

    makespan_seconds: float = 0.0
    busy_by_category: dict[str, float] = field(default_factory=dict)
    network_bytes: int = 0
    network_transfers: int = 0
    p2p_transfers: int = 0
    ces_scheduled: int = 0
    mean_decision_micros: float = 0.0
    node_oversubscription: dict[str, float] = field(default_factory=dict)
    #: node -> host-link GiB (cold + refaults + writebacks + prefetches)
    uvm_link_gib: dict[str, float] = field(default_factory=dict)
    thrashing_launches: int = 0
    top_kernels: list[tuple[str, int, float]] = field(
        default_factory=list)      # (name, launches, total seconds)

    def as_dict(self) -> dict:
        """JSON-ready view (schema-stable, used by the JSON run report)."""
        return {
            "makespan_seconds": self.makespan_seconds,
            "busy_by_category": dict(sorted(
                self.busy_by_category.items())),
            "network_bytes": self.network_bytes,
            "network_transfers": self.network_transfers,
            "p2p_transfers": self.p2p_transfers,
            "ces_scheduled": self.ces_scheduled,
            "mean_decision_micros": self.mean_decision_micros,
            "node_oversubscription": dict(sorted(
                self.node_oversubscription.items())),
            "uvm_link_gib": dict(sorted(self.uvm_link_gib.items())),
            "thrashing_launches": self.thrashing_launches,
            "top_kernels": [
                {"kernel": name, "launches": count, "seconds": seconds}
                for name, count, seconds in self.top_kernels],
        }

    def render(self) -> str:
        """The report as stacked text tables."""
        gib = 1024 ** 3
        rows = [
            ("makespan", f"{self.makespan_seconds:.4g} s"),
            ("CEs scheduled", self.ces_scheduled),
            ("mean decision cost", f"{self.mean_decision_micros:.1f} us"),
            ("network volume",
             f"{self.network_bytes / gib:.2f} GiB over "
             f"{self.network_transfers} transfers "
             f"({self.p2p_transfers} P2P)"),
        ]
        for node, osf in sorted(self.node_oversubscription.items()):
            rows.append((f"OSF on {node}", f"{osf:.3g}x"))
        for node, link in sorted(self.uvm_link_gib.items()):
            rows.append((f"UVM link traffic on {node}",
                         f"{link:.2f} GiB"))
        if self.thrashing_launches:
            rows.append(("thrashing launches", self.thrashing_launches))
        parts = [format_table(["metric", "value"], rows,
                              title="Run report")]
        if self.busy_by_category:
            parts.append(format_table(
                ["category", "aggregate busy seconds"],
                sorted(self.busy_by_category.items(),
                       key=lambda kv: -kv[1]),
                title="Where the simulated time went"))
        if self.top_kernels:
            parts.append(format_table(
                ["kernel", "launches", "total seconds"],
                self.top_kernels,
                title="Top kernels by simulated time"))
        return "\n\n".join(parts)


def report_for(runtime) -> RunReport:
    """Build a :class:`RunReport` from a GrOUT or GrCUDA runtime."""
    report = RunReport()
    tracer = runtime.tracer
    if tracer is not None:
        report.makespan_seconds = tracer.makespan()
        report.busy_by_category = time_breakdown(tracer)

    controller = getattr(runtime, "controller", None)
    if controller is not None:     # GrOUT
        stats = controller.stats
        report.ces_scheduled = stats.ces_scheduled
        report.mean_decision_micros = stats.mean_decision_seconds * 1e6
        fabric = runtime.cluster.fabric
        report.network_bytes = fabric.bytes_moved
        report.network_transfers = fabric.transfer_count
        report.p2p_transfers = stats.p2p_transfers
        report.node_oversubscription = {
            w.name: w.oversubscription()
            for w in runtime.cluster.workers}
        gib = 1024 ** 3
        for w in runtime.cluster.workers:
            if w.uvm is not None:
                report.uvm_link_gib[w.name] = \
                    w.uvm.stats.link_bytes / gib
                report.thrashing_launches += \
                    w.uvm.stats.thrashing_launches
        schedulers = controller.workers.values()
    else:                          # GrCUDA
        node = runtime.node
        report.node_oversubscription = {
            node.name: node.oversubscription()}
        if node.uvm is not None:
            report.uvm_link_gib[node.name] = \
                node.uvm.stats.link_bytes / 1024 ** 3
            report.thrashing_launches = \
                node.uvm.stats.thrashing_launches
        report.ces_scheduled = runtime.dag.size
        schedulers = [runtime.scheduler]

    totals: dict[str, tuple[int, float]] = {}
    for scheduler in schedulers:
        for name, (count, seconds) in scheduler.kernel_totals.items():
            have_count, have_seconds = totals.get(name, (0, 0.0))
            totals[name] = (have_count + count, have_seconds + seconds)
    report.top_kernels = sorted(
        ((name, count, seconds)
         for name, (count, seconds) in totals.items()),
        key=lambda row: -row[2])[:10]
    return report


def json_run_report(runtime) -> dict:
    """The full observability payload of one run, JSON-ready.

    Merges the classic :class:`RunReport` accounting with the metrics
    registry snapshot and the per-CE/per-link :class:`~repro.obs.RunSummary`
    under one top-level schema tag (``grout-run-report/1``); the exact
    key layout is documented in ``docs/OBSERVABILITY.md`` and pinned by a
    schema test.
    """
    payload: dict = {
        "schema": "grout-run-report/1",
        "report": report_for(runtime).as_dict(),
        "summary": build_run_summary(runtime).as_dict(),
    }
    metrics = getattr(runtime, "metrics", None)
    if metrics is not None:
        payload["metrics"] = registry_to_dict(metrics)
    return payload


def write_run_report(runtime, destination: "str | IO[str]") -> None:
    """Serialise :func:`json_run_report` to a file path or stream."""
    payload = json_run_report(runtime)
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
    else:
        json.dump(payload, destination, indent=2)
