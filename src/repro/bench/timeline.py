"""ASCII timelines from simulation traces.

Renders a :class:`~repro.sim.Tracer`'s spans as a Gantt-style chart, one
row per lane (GPU stream, network link), so overlap — the thing GrOUT's
scheduler exists to create — is visible at a glance in a terminal:

    worker0/gpu0/stream0 |###  ##########        | kernel x3
    net:controller->worker0 |=======             | transfer x2

Fill glyphs follow :data:`CATEGORY_GLYPHS`: ``#`` kernel, ``=``
transfer, ``~`` migration, ``+`` prefetch, ``.`` sched, ``!`` fault
(injected failures and recoveries), ``?`` retry (fabric backoff waits),
``-`` chunk (pipelined sub-transfers), ``>`` relay (collective legs);
categories outside the table cycle through spare glyphs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import Span, Tracer

#: Fill characters per span category (unknown categories cycle extras).
CATEGORY_GLYPHS = {
    "kernel": "#",
    "transfer": "=",
    "migration": "~",
    "prefetch": "+",
    "sched": ".",
    "fault": "!",
    "retry": "?",
    "chunk": "-",
    "relay": ">",
}
_EXTRA_GLYPHS = "*%@o"


@dataclass(frozen=True, slots=True)
class TimelineOptions:
    """Rendering knobs."""

    width: int = 72             # characters of the time axis
    max_lanes: int = 24         # truncate very wide clusters
    min_duration: float = 0.0   # drop spans shorter than this

    def __post_init__(self) -> None:
        if self.width < 10:
            raise ValueError("width must be >= 10")
        if self.max_lanes < 1:
            raise ValueError("max_lanes must be >= 1")


def _glyph_for(category: str, assigned: dict[str, str]) -> str:
    if category in CATEGORY_GLYPHS:
        return CATEGORY_GLYPHS[category]
    if category not in assigned:
        assigned[category] = _EXTRA_GLYPHS[len(assigned)
                                           % len(_EXTRA_GLYPHS)]
    return assigned[category]


def render_timeline(tracer: Tracer,
                    options: TimelineOptions | None = None) -> str:
    """Render every lane of a trace as one ASCII Gantt chart."""
    options = options or TimelineOptions()
    spans = [s for s in tracer.spans
             if s.duration >= options.min_duration]
    if not spans:
        return "(no spans recorded)"
    start = min(s.start for s in spans)
    end = max(s.end for s in spans)
    horizon = max(end - start, 1e-12)
    scale = options.width / horizon

    by_lane: dict[str, list[Span]] = {}
    for span in spans:
        by_lane.setdefault(span.lane, []).append(span)

    lanes = sorted(by_lane)
    clipped = len(lanes) - options.max_lanes
    lanes = lanes[:options.max_lanes]
    label_width = max(len(lane) for lane in lanes)

    extra_glyphs: dict[str, str] = {}
    lines = [f"t = {start:.6g} .. {end:.6g} s  "
             f"({options.width} cols, "
             f"{horizon / options.width:.3g} s/col)"]
    for lane in lanes:
        row = [" "] * options.width
        counts: dict[str, int] = {}
        for span in sorted(by_lane[lane], key=lambda s: s.start):
            glyph = _glyph_for(span.category, extra_glyphs)
            lo = int((span.start - start) * scale)
            hi = max(lo + 1, int((span.end - start) * scale))
            for i in range(lo, min(hi, options.width)):
                row[i] = glyph
            counts[span.category] = counts.get(span.category, 0) + 1
        summary = " ".join(f"{cat} x{n}" for cat, n in sorted(
            counts.items()))
        lines.append(f"{lane.rjust(label_width)} |{''.join(row)}| "
                     f"{summary}")
    if clipped > 0:
        lines.append(f"... {clipped} more lanes")
    seen_categories = {s.category for s in spans}
    glyph_map = {**CATEGORY_GLYPHS, **extra_glyphs}
    legend = "  ".join(f"{glyph}={cat}" for cat, glyph in
                       sorted(glyph_map.items())
                       if cat in seen_categories)
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def utilisation_report(tracer: Tracer) -> str:
    """Per-lane busy fraction over the trace's makespan."""
    makespan = tracer.makespan()
    if makespan == 0:
        return "(no spans recorded)"
    lines = ["lane utilisation over the makespan "
             f"({makespan:.6g} s):"]
    for lane in tracer.lanes():
        busy = tracer.busy_time(lane)
        frac = busy / makespan
        bar = "#" * int(round(frac * 30))
        lines.append(f"  {lane:36s} {frac:6.1%} |{bar:<30s}|")
    return "\n".join(lines)
