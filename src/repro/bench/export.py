"""Structured export of figure results.

Every ``figN`` result object is a dataclass; this module serialises them
to JSON so EXPERIMENTS.md-style records (and external plotting) can be
regenerated programmatically: ``python -m repro figure 6a --json out.json``.
"""

from __future__ import annotations

import dataclasses
import json
from typing import IO


def figure_to_dict(result) -> dict:
    """A figure result as plain JSON-compatible data.

    Dict keys are coerced to strings (JSON requirement); tuples become
    lists.  The figure class name is recorded so consumers can dispatch.
    """
    if not dataclasses.is_dataclass(result):
        raise TypeError(f"{type(result).__name__} is not a figure result")

    def clean(value):
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            return {f.name: clean(getattr(value, f.name))
                    for f in dataclasses.fields(value)}
        if isinstance(value, dict):
            return {str(k): clean(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [clean(v) for v in value]
        if isinstance(value, (str, int, float, bool)) or value is None:
            return value
        return str(value)

    payload = {"figure": type(result).__name__}
    for field in dataclasses.fields(result):
        payload[field.name] = clean(getattr(result, field.name))
    return payload


def write_figure_json(result, destination: "str | IO[str]") -> None:
    """Serialise a figure result to a JSON file or stream."""
    payload = figure_to_dict(result)
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
    else:
        json.dump(payload, destination, indent=2)
