"""Shared experiment drivers for the figure-reproduction harness.

Every paper experiment boils down to: build a runtime (GrCUDA single node
or GrOUT over N workers), instantiate a suite workload at a modeled
footprint, execute with the paper's 2.5 h cap, and collect the simulated
time.  This module owns those mechanics plus the sizing conventions
(footprint sweep, adaptive UVM page granularity for cheap simulation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import RuntimeConfig, page_size_for
from repro.core.policies import ExplorationLevel, Policy
from repro.gpu.specs import GIB
from repro.sim import FaultPlan
from repro.workloads import RunResult, make_workload

__all__ = [
    "ExperimentResult", "NODE_GPU_BYTES", "PAPER_SIZES_GB",
    "RUN_CAP_SECONDS", "page_size_for", "run_grout", "run_single_node",
    "slowdown_series", "step_ratios",
]

#: The paper's footprint sweep: 4 GB → 160 GB (= 5× OSF on 2×16 GB × 1 node).
PAPER_SIZES_GB = (4, 8, 16, 32, 64, 96, 128, 160)

#: The paper's per-run wall cap: 2.5 hours.
RUN_CAP_SECONDS = 2.5 * 3600

#: Node memory of the paper's worker (2 × V100 16 GB).
NODE_GPU_BYTES = 32 * GIB


@dataclass(frozen=True, slots=True)
class ExperimentResult:
    """One (workload, footprint, configuration) measurement."""

    workload: str
    mode: str                 # "grcuda" or "grout"
    footprint_bytes: int
    n_workers: int
    policy: str
    elapsed_seconds: float
    completed: bool
    verified: bool
    oversubscription: float   # vs a single node's GPU memory

    @property
    def footprint_gb(self) -> float:
        """Modeled footprint in GiB."""
        return self.footprint_bytes / GIB


def run_single_node(workload: str, footprint_bytes: int, *,
                    config: RuntimeConfig | None = None,
                    cap: float | None = RUN_CAP_SECONDS,
                    page_size: int | None = None,
                    check: bool = True,
                    seed: int = 0,
                    repeats: int = 1,
                    uvm_backend: str | None = None,
                    **workload_kwargs) -> ExperimentResult:
    """One GrCUDA (single-node, 2×V100) run — the Fig. 1/6a baseline.

    ``config`` carries the runtime knobs (its ``seed`` becomes the base
    repetition seed); the individual keyword knobs remain as shorthand
    and are ignored when a config is given.  ``repeats > 1`` follows the
    paper's protocol (§V-A: ten repetitions, arithmetic mean): each
    repetition gets a distinct seed, so stochastic model components
    (random page sets, random eviction) average out.
    """
    if config is None:
        config = RuntimeConfig(mode="grcuda", page_size=page_size,
                               seed=seed, uvm_backend=uvm_backend)
    else:
        config = config.merge(mode="grcuda")

    def once(s: int) -> ExperimentResult:
        rt = config.merge(seed=s).build_runtime(
            footprint_bytes=footprint_bytes)
        wl = make_workload(workload, footprint_bytes, seed=s,
                           **workload_kwargs)
        res = wl.execute(rt, timeout=cap, check=check)
        rt.shutdown()
        return _to_experiment(res, wl.name, "grcuda", 1, "intra-node",
                              footprint_bytes)

    return _mean_of([once(config.seed + i)
                     for i in range(max(1, repeats))])


def run_grout(workload: str, footprint_bytes: int, *,
              config: RuntimeConfig | None = None,
              n_workers: int = 2,
              policy: Policy | str = "vector-step",
              level: ExplorationLevel = ExplorationLevel.MEDIUM,
              cap: float | None = RUN_CAP_SECONDS,
              page_size: int | None = None,
              check: bool = True,
              seed: int = 0,
              repeats: int = 1,
              faults: FaultPlan | None = None,
              request_replacement: bool = False,
              chunk_bytes: int | None = None,
              collectives: bool = False,
              uvm_backend: str | None = None,
              **workload_kwargs) -> ExperimentResult:
    """One GrOUT run on ``n_workers`` paper nodes with a given policy.

    ``config`` carries every runtime knob at once (its ``seed`` becomes
    the base repetition seed); the individual keyword knobs remain as
    shorthand and are ignored when a config is given.  ``repeats``
    averages over per-repetition seeds (paper protocol §V-A).  The armed
    :class:`FaultPlan` fires on every repetition before the workload
    executes; ``chunk_bytes`` pipelines fabric transfers at that granule
    and ``collectives`` turns broadcast-shaped replication into relay
    chains — both default off (the paper's serial sends).
    """
    if config is None:
        config = RuntimeConfig(
            mode="grout", policy=policy, level=level,
            n_workers=n_workers, page_size=page_size, seed=seed,
            uvm_backend=uvm_backend, chunk_bytes=chunk_bytes,
            collectives=collectives, faults=faults,
            replace_crashed=request_replacement)
    else:
        config = config.merge(mode="grout")
    wl = make_workload(workload, footprint_bytes, seed=config.seed,
                       **workload_kwargs)
    # One policy instance across repetitions, reset between them, so a
    # caller-provided stateful policy keeps working exactly as before.
    policy_obj = config.build_policy(wl)

    def once(s: int) -> ExperimentResult:
        wl_run = make_workload(workload, footprint_bytes, seed=s,
                               **workload_kwargs)
        policy_obj.reset()
        rt = config.merge(policy=policy_obj, seed=s).build_runtime(
            footprint_bytes=footprint_bytes)
        res = wl_run.execute(rt, timeout=cap, check=check)
        rt.shutdown()
        return _to_experiment(res, wl_run.name, "grout",
                              config.n_workers, policy_obj.name,
                              footprint_bytes)

    return _mean_of([once(config.seed + i)
                     for i in range(max(1, repeats))])


def _to_experiment(res: RunResult, workload: str, mode: str,
                   n_workers: int, policy: str,
                   footprint_bytes: int) -> ExperimentResult:
    return ExperimentResult(
        workload=workload,
        mode=mode,
        footprint_bytes=footprint_bytes,
        n_workers=n_workers,
        policy=policy,
        elapsed_seconds=res.elapsed_seconds,
        completed=res.completed,
        verified=res.verified,
        oversubscription=footprint_bytes / NODE_GPU_BYTES,
    )


def _mean_of(results: list[ExperimentResult]) -> ExperimentResult:
    """Arithmetic mean of repeated runs (identical configuration)."""
    if len(results) == 1:
        return results[0]
    first = results[0]
    import dataclasses
    return dataclasses.replace(
        first,
        elapsed_seconds=sum(r.elapsed_seconds for r in results)
        / len(results),
        completed=all(r.completed for r in results),
        verified=all(r.verified for r in results),
    )


def slowdown_series(results: list[ExperimentResult]) -> list[float]:
    """Per-size slowdown vs the smallest footprint (Fig. 6's y-axis)."""
    if not results:
        return []
    base = results[0].elapsed_seconds
    if base <= 0:
        raise ValueError("baseline run has non-positive elapsed time")
    return [r.elapsed_seconds / base for r in results]


def step_ratios(results: list[ExperimentResult]) -> list[float]:
    """Ratio between consecutive footprint steps (the paper's cliffs)."""
    out = []
    for prev, cur in zip(results, results[1:]):
        out.append(cur.elapsed_seconds / prev.elapsed_seconds
                   if prev.elapsed_seconds > 0 else float("inf"))
    return out
