"""Hash join — build + probe with random-access table traffic.

The classic two-phase equi-join: build kernels scatter one relation's
keys into a hash table (sequential key stream, random table writes),
then probe kernels look the other relation up (sequential key stream,
random table reads) and count matches.  The table is the pointer-chase
hot spot: every access lands on a hash-determined page, defeating any
prefetcher, and the build phase *dirties* those pages so oversubscribed
eviction pays write-backs too.

The DAG is a chain-then-fan: build kernels serialise on the table
(write-after-write), probes all depend on the last build and then run
in parallel (read-only).  UVMBench category: random-access /
hash-based.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.kernel import (
    AccessPattern,
    ArrayAccess,
    Direction,
    KernelSpec,
)
from repro.workloads.base import FOOTPRINT_FILL, Workload

#: Real backing sizes (numerics only): table slots and keys per chunk.
REAL_SLOTS = 4096
KEYS_PER_CHUNK = 1024

#: Key universe; ~25% of probes hit when both relations draw from it.
KEY_RANGE = 16384

#: Share of the declared footprint held by the hash table itself; the
#: build/probe key streams split the rest.
TABLE_SHARE = 0.5


def make_build_kernel() -> KernelSpec:
    """Scatter one build chunk's keys into the table (last write wins)."""

    def executor(keys_c, table, count):
        slots = keys_c.data % REAL_SLOTS
        # Program-order scatter: later keys overwrite earlier collisions,
        # exactly what the sequential reference replays.
        table.data[slots] = keys_c.data

    def access_fn(args):
        keys_c, table, count = args
        return [
            ArrayAccess(keys_c, Direction.IN, AccessPattern.SEQUENTIAL),
            ArrayAccess(table, Direction.INOUT, AccessPattern.RANDOM),
        ]

    def flops_fn(args):
        return float(args[2])

    return KernelSpec("join_build", executor=executor, access_fn=access_fn,
                      flops_fn=flops_fn)


def make_probe_kernel() -> KernelSpec:
    """Count one probe chunk's keys present in the table."""

    def executor(keys_c, table, out_c, count):
        slots = keys_c.data % REAL_SLOTS
        out_c.data[0] = np.count_nonzero(
            table.data[slots] == keys_c.data)

    def access_fn(args):
        keys_c, table, out_c, count = args
        return [
            ArrayAccess(keys_c, Direction.IN, AccessPattern.SEQUENTIAL),
            ArrayAccess(table, Direction.IN, AccessPattern.RANDOM),
            ArrayAccess(out_c, Direction.OUT, AccessPattern.SEQUENTIAL),
        ]

    def flops_fn(args):
        return float(args[3])

    return KernelSpec("join_probe", executor=executor, access_fn=access_fn,
                      flops_fn=flops_fn)


class HashJoin(Workload):
    """Build/probe equi-join counting matches per probe chunk."""

    name = "join"

    def __init__(self, footprint_bytes: int, *, n_chunks: int | None = None,
                 seed: int = 0):
        super().__init__(footprint_bytes, n_chunks=n_chunks, seed=seed)
        fill = int(FOOTPRINT_FILL * self.footprint_bytes)
        self.table_virtual_bytes = max(REAL_SLOTS * 4,
                                       int(fill * TABLE_SHARE))
        self.keys_virtual_bytes = max(
            KEYS_PER_CHUNK * 4,
            (fill - self.table_virtual_bytes) // (2 * self.n_chunks))
        self.build_kernel = make_build_kernel()
        self.probe_kernel = make_probe_kernel()
        self.build_chunks: list = []
        self.probe_chunks: list = []
        self.out_chunks: list = []
        self.table = None

    def build(self, rt) -> None:
        """Allocate the table plus build/probe key chunks."""
        self.table = rt.device_array(
            REAL_SLOTS, np.int32,
            virtual_nbytes=self.table_virtual_bytes, name="join.table")

        def init_table(table=self.table):
            table.data[:] = -1

        self._count(rt.host_write(self.table, init_table,
                                  label="join.init_table"))

        for c in range(self.n_chunks):
            rng = np.random.default_rng(self.seed + 1 + c)
            build_keys = rng.integers(0, KEY_RANGE, size=KEYS_PER_CHUNK,
                                      dtype=np.int32)
            probe_keys = rng.integers(0, KEY_RANGE, size=KEYS_PER_CHUNK,
                                      dtype=np.int32)
            b_c = rt.device_array(KEYS_PER_CHUNK, np.int32,
                                  virtual_nbytes=self.keys_virtual_bytes,
                                  name=f"join.build{c}")
            p_c = rt.device_array(KEYS_PER_CHUNK, np.int32,
                                  virtual_nbytes=self.keys_virtual_bytes,
                                  name=f"join.probe{c}")
            out_c = rt.device_array(1, np.int32, virtual_nbytes=4,
                                    name=f"join.out{c}")
            self.build_chunks.append(b_c)
            self.probe_chunks.append(p_c)
            self.out_chunks.append(out_c)

            def init_build(a=b_c, values=build_keys):
                a.data[:] = values

            def init_probe(a=p_c, values=probe_keys):
                a.data[:] = values

            self._count(rt.host_write(b_c, init_build,
                                      label=f"join.init_build{c}"))
            self._count(rt.host_write(p_c, init_probe,
                                      label=f"join.init_probe{c}"))

    def run(self, rt) -> None:
        """Build the table chunk by chunk, then probe every chunk."""
        for c in range(self.n_chunks):
            args = (self.build_chunks[c], self.table, KEYS_PER_CHUNK)
            self._count(rt.launch(self.build_kernel, 2048, 256, args,
                                  label=f"join.build{c}"))
        for c in range(self.n_chunks):
            args = (self.probe_chunks[c], self.table, self.out_chunks[c],
                    KEYS_PER_CHUNK)
            self._count(rt.launch(self.probe_kernel, 2048, 256, args,
                                  label=f"join.probe{c}"))

    def verify(self) -> bool:
        """Replay the build sequentially, then recount every probe."""
        assert self.table is not None
        table = np.full(REAL_SLOTS, -1, dtype=np.int32)
        for b_c in self.build_chunks:
            table[b_c.data % REAL_SLOTS] = b_c.data
        if not np.array_equal(self.table.data, table):
            return False
        for p_c, out_c in zip(self.probe_chunks, self.out_chunks):
            expected = np.count_nonzero(
                table[p_c.data % REAL_SLOTS] == p_c.data)
            if int(out_c.data[0]) != expected:
                return False
        return True
