"""The workload suite: the paper's dense programs plus irregular ones.

Dense/regular (§V-B + Fig. 1): MLE, CG, MV, Black–Scholes, the vision
pipeline.  Irregular (UVMBench's sparse/graph/random categories): SpMV
on a power-law matrix, level-synchronous BFS, hash join.  The catalogue
with access-pattern taxonomy lives in ``docs/WORKLOADS.md`` (kept in
sync with this registry by ``tests/test_docs_check.py``).
"""

from repro.workloads.base import (
    DEFAULT_MAX_REAL_ELEMENTS,
    RunResult,
    Workload,
    real_elements,
)
from repro.workloads.bfs import BfsTraversal, make_bfs_kernel, reference_bfs
from repro.workloads.blackscholes import (
    BlackScholes,
    black_scholes_reference,
    make_bs_kernel,
)
from repro.workloads.cg import ConjugateGradient
from repro.workloads.hashjoin import (
    HashJoin,
    make_build_kernel,
    make_probe_kernel,
)
from repro.workloads.images import ImagePipeline, reference_pipeline
from repro.workloads.mle import MlEnsemble
from repro.workloads.mv import MatVec, make_mv_kernel
from repro.workloads.spmv import SpMV, make_spmv_kernel

#: Harness registry keyed by the paper's workload names.
WORKLOADS: dict[str, type[Workload]] = {
    "bs": BlackScholes,
    "mle": MlEnsemble,
    "cg": ConjugateGradient,
    "mv": MatVec,
    # Beyond the paper's three: the GrCUDA-suite-style vision pipeline,
    # demonstrating that the suite is user-extensible.
    "img": ImagePipeline,
    # Irregular-access suite (UVMBench's sparse/graph/random categories):
    # the workloads whose fault patterns separate paging backends.
    "spmv": SpMV,
    "bfs": BfsTraversal,
    "join": HashJoin,
}


def make_workload(name: str, footprint_bytes: int, **kwargs) -> Workload:
    """Instantiate a suite workload by its paper name."""
    try:
        cls = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None
    return cls(footprint_bytes, **kwargs)


__all__ = [
    "BfsTraversal",
    "BlackScholes",
    "ConjugateGradient",
    "DEFAULT_MAX_REAL_ELEMENTS",
    "HashJoin",
    "ImagePipeline",
    "MatVec",
    "MlEnsemble",
    "RunResult",
    "SpMV",
    "WORKLOADS",
    "Workload",
    "black_scholes_reference",
    "make_bfs_kernel",
    "make_bs_kernel",
    "make_build_kernel",
    "make_mv_kernel",
    "make_probe_kernel",
    "make_spmv_kernel",
    "make_workload",
    "real_elements",
    "reference_bfs",
    "reference_pipeline",
]
