"""The paper's workload suite: MLE, CG, MV (§V-B) plus Black–Scholes (Fig. 1)."""

from repro.workloads.base import (
    DEFAULT_MAX_REAL_ELEMENTS,
    RunResult,
    Workload,
    real_elements,
)
from repro.workloads.blackscholes import (
    BlackScholes,
    black_scholes_reference,
    make_bs_kernel,
)
from repro.workloads.cg import ConjugateGradient
from repro.workloads.images import ImagePipeline, reference_pipeline
from repro.workloads.mle import MlEnsemble
from repro.workloads.mv import MatVec, make_mv_kernel

#: Harness registry keyed by the paper's workload names.
WORKLOADS: dict[str, type[Workload]] = {
    "bs": BlackScholes,
    "mle": MlEnsemble,
    "cg": ConjugateGradient,
    "mv": MatVec,
    # Beyond the paper's three: the GrCUDA-suite-style vision pipeline,
    # demonstrating that the suite is user-extensible.
    "img": ImagePipeline,
}


def make_workload(name: str, footprint_bytes: int, **kwargs) -> Workload:
    """Instantiate a suite workload by its paper name."""
    try:
        cls = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None
    return cls(footprint_bytes, **kwargs)


__all__ = [
    "BlackScholes",
    "ConjugateGradient",
    "DEFAULT_MAX_REAL_ELEMENTS",
    "ImagePipeline",
    "MatVec",
    "MlEnsemble",
    "RunResult",
    "WORKLOADS",
    "Workload",
    "black_scholes_reference",
    "make_bs_kernel",
    "make_mv_kernel",
    "make_workload",
    "real_elements",
    "reference_pipeline",
]
