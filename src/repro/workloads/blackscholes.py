"""Black–Scholes — the paper's motivating example (Fig. 1).

European call/put pricing over N independent options: five arrays (spot,
strike, maturity, call, put), embarrassingly parallel, arithmetic-heavy
(~85 FLOP per option), chunked so the runtime can distribute it.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

from repro.gpu.kernel import (
    AccessPattern,
    ArrayAccess,
    Direction,
    KernelSpec,
)
from repro.workloads.base import Workload, real_elements

RISK_FREE = 0.05
VOLATILITY = 0.30

#: FLOP per option priced (matches the kernel-C analyser on the same code).
FLOPS_PER_OPTION = 85.0


def _norm_cdf(x: np.ndarray) -> np.ndarray:
    return 0.5 * (1.0 + special.erf(x / math.sqrt(2.0)))


def black_scholes_reference(spot: np.ndarray, strike: np.ndarray,
                            tmat: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Closed-form call/put prices (the verification oracle)."""
    sqrt_t = np.sqrt(tmat)
    d1 = (np.log(spot / strike)
          + (RISK_FREE + 0.5 * VOLATILITY ** 2) * tmat) \
        / (VOLATILITY * sqrt_t)
    d2 = d1 - VOLATILITY * sqrt_t
    disc = np.exp(-RISK_FREE * tmat)
    call = spot * _norm_cdf(d1) - strike * disc * _norm_cdf(d2)
    put = strike * disc * _norm_cdf(-d2) - spot * _norm_cdf(-d1)
    return call, put


def make_bs_kernel() -> KernelSpec:
    """The pricing kernel: 5 streaming arrays, ~4.2 FLOP/byte."""

    def executor(spot, strike, tmat, call, put, n):
        c, p = black_scholes_reference(
            spot.data.astype(np.float64),
            strike.data.astype(np.float64),
            tmat.data.astype(np.float64))
        call.data[:] = c.astype(call.dtype)
        put.data[:] = p.astype(put.dtype)

    def access_fn(args):
        spot, strike, tmat, call, put, n = args
        seq = AccessPattern.SEQUENTIAL
        return [
            ArrayAccess(spot, Direction.IN, seq),
            ArrayAccess(strike, Direction.IN, seq),
            ArrayAccess(tmat, Direction.IN, seq),
            ArrayAccess(call, Direction.OUT, seq),
            ArrayAccess(put, Direction.OUT, seq),
        ]

    def flops_fn(args):
        n = args[-1]
        return FLOPS_PER_OPTION * float(n)

    return KernelSpec("black_scholes", executor=executor,
                      access_fn=access_fn, flops_fn=flops_fn)


class BlackScholes(Workload):
    """Chunked Black–Scholes pricing with a given modeled footprint."""

    name = "bs"

    #: bytes of modeled data per option (5 float32 arrays).
    BYTES_PER_OPTION = 5 * 4

    def __init__(self, footprint_bytes: int, *, n_chunks: int | None = None,
                 seed: int = 0):
        super().__init__(footprint_bytes, n_chunks=n_chunks, seed=seed)
        self.options = max(
            self.n_chunks,
            int(0.98 * self.footprint_bytes) // self.BYTES_PER_OPTION)
        self.kernel = make_bs_kernel()
        self.chunks: list[dict] = []

    def build(self, rt) -> None:
        """Allocate and initialise the option-book chunks."""
        per_chunk_virtual = self.options // self.n_chunks
        array_virtual_bytes = per_chunk_virtual * 4
        n_real = real_elements(per_chunk_virtual)
        for c in range(self.n_chunks):
            chunk = {
                name: rt.device_array(
                    n_real, np.float32,
                    virtual_nbytes=array_virtual_bytes,
                    name=f"bs.{name}{c}")
                for name in ("spot", "strike", "tmat", "call", "put")
            }
            self.chunks.append(chunk)
            rng = np.random.default_rng(self.seed + c)
            spot = rng.uniform(10.0, 200.0, n_real).astype(np.float32)
            strike = rng.uniform(10.0, 200.0, n_real).astype(np.float32)
            tmat = rng.uniform(0.1, 2.0, n_real).astype(np.float32)

            def init(chunk=chunk, s=spot, k=strike, t=tmat):
                chunk["spot"].data[:] = s
                chunk["strike"].data[:] = k
                chunk["tmat"].data[:] = t

            self._count(rt.host_write(
                [chunk["spot"], chunk["strike"], chunk["tmat"]], init,
                label=f"bs.init{c}"))

    def run(self, rt) -> None:
        """Launch one pricing kernel per chunk."""
        for c, chunk in enumerate(self.chunks):
            n_virtual = self.options // self.n_chunks
            args = (chunk["spot"], chunk["strike"], chunk["tmat"],
                    chunk["call"], chunk["put"], n_virtual)
            self._count(rt.launch(self.kernel, 4096, 256, args,
                                  label=f"bs{c}"))

    def verify(self) -> bool:
        """Check prices against the closed-form oracle."""
        for chunk in self.chunks:
            call, put = black_scholes_reference(
                chunk["spot"].data.astype(np.float64),
                chunk["strike"].data.astype(np.float64),
                chunk["tmat"].data.astype(np.float64))
            if not np.allclose(chunk["call"].data, call, rtol=1e-4,
                               atol=1e-4):
                return False
            if not np.allclose(chunk["put"].data, put, rtol=1e-4,
                               atol=1e-4):
                return False
        return True
