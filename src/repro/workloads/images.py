"""IMG — an image-enhancement pipeline (GrCUDA suite style).

Not one of the paper's three evaluation workloads, but the kind of
multi-stage vision pipeline the GrCUDA suite ships (blur → edges →
unsharp-mask → combine) and a demonstration that the suite is open:
five kernels per chunk with a diamond dependency structure, verified
against a SciPy reference.

Per image-batch chunk::

        x ──────────────┬──────────────┐
        │               │              │
    blur_h → blur_v ────┤              │
        (separable)     ▼              ▼
                      sobel         sharpen(x, blur)
                        │              │
                        └── combine ◄──┘
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.gpu.kernel import (
    AccessPattern,
    ArrayAccess,
    Direction,
    KernelSpec,
)
from repro.workloads.base import FOOTPRINT_FILL, Workload

#: Real backing: a small square image batch per chunk.
REAL_SIDE = 48
BATCH = 2

#: 1-D Gaussian tap weights (sigma ~1, 5 taps) for the separable blur.
GAUSS = np.array([0.06136, 0.24477, 0.38774, 0.24477, 0.06136],
                 dtype=np.float64)

SHARPEN_AMOUNT = 0.6
EDGE_WEIGHT = 0.35


def _blur_axis(data: np.ndarray, axis: int) -> np.ndarray:
    return ndimage.convolve1d(data, GAUSS, axis=axis, mode="nearest")


def _sobel_mag(data: np.ndarray) -> np.ndarray:
    gx = ndimage.sobel(data, axis=-1, mode="nearest")
    gy = ndimage.sobel(data, axis=-2, mode="nearest")
    return np.sqrt(gx * gx + gy * gy)


def reference_pipeline(x: np.ndarray) -> np.ndarray:
    """The NumPy/SciPy oracle of one chunk's full pipeline."""
    blur = _blur_axis(_blur_axis(x, -1), -2)
    sobel = _sobel_mag(blur)
    sharpen = np.clip(x + SHARPEN_AMOUNT * (x - blur), 0.0, 1.0)
    return np.clip(sharpen * (1.0 - EDGE_WEIGHT * sobel), 0.0, 1.0)


class ImagePipeline(Workload):
    """Chunked unsharp-masking pipeline over an image corpus."""

    name = "img"

    def __init__(self, footprint_bytes: int, *, n_chunks: int | None = None,
                 seed: int = 0):
        super().__init__(footprint_bytes, n_chunks=n_chunks, seed=seed)
        # Footprint = corpus + intermediates (blur, sobel, sharpen, out
        # are materialised per chunk -> 5 equal-size planes).
        plane = int(FOOTPRINT_FILL * self.footprint_bytes) // 5
        self._plane_bytes = max(4096, plane // self.n_chunks)
        self.chunks: list[dict] = []

    # -- kernels -----------------------------------------------------------

    def _conv_kernel(self, name: str, axis: int) -> KernelSpec:
        def executor(src, dst):
            dst.data[:] = _blur_axis(src.data, axis)

        def access_fn(args):
            src, dst = args
            return [ArrayAccess(src, Direction.IN, AccessPattern.STRIDED,
                                passes=float(len(GAUSS))),
                    ArrayAccess(dst, Direction.OUT,
                                AccessPattern.SEQUENTIAL)]

        def flops_fn(args):
            return 2.0 * len(GAUSS) * (self._plane_bytes / 4)

        return KernelSpec(name, executor=executor, access_fn=access_fn,
                          flops_fn=flops_fn)

    def _sobel_kernel(self) -> KernelSpec:
        def executor(src, dst):
            dst.data[:] = _sobel_mag(src.data)

        def access_fn(args):
            src, dst = args
            return [ArrayAccess(src, Direction.IN, AccessPattern.STRIDED,
                                passes=6.0),
                    ArrayAccess(dst, Direction.OUT,
                                AccessPattern.SEQUENTIAL)]

        def flops_fn(args):
            return 20.0 * (self._plane_bytes / 4)

        return KernelSpec("img_sobel", executor=executor,
                          access_fn=access_fn, flops_fn=flops_fn)

    def _sharpen_kernel(self) -> KernelSpec:
        def executor(x, blur, dst):
            dst.data[:] = np.clip(
                x.data + SHARPEN_AMOUNT * (x.data - blur.data), 0.0, 1.0)

        def access_fn(args):
            x, blur, dst = args
            seq = AccessPattern.SEQUENTIAL
            return [ArrayAccess(x, Direction.IN, seq),
                    ArrayAccess(blur, Direction.IN, seq),
                    ArrayAccess(dst, Direction.OUT, seq)]

        def flops_fn(args):
            return 4.0 * (self._plane_bytes / 4)

        return KernelSpec("img_sharpen", executor=executor,
                          access_fn=access_fn, flops_fn=flops_fn)

    def _combine_kernel(self) -> KernelSpec:
        def executor(sharpen, sobel, dst):
            dst.data[:] = np.clip(
                sharpen.data * (1.0 - EDGE_WEIGHT * sobel.data), 0.0, 1.0)

        def access_fn(args):
            sharpen, sobel, dst = args
            seq = AccessPattern.SEQUENTIAL
            return [ArrayAccess(sharpen, Direction.IN, seq),
                    ArrayAccess(sobel, Direction.IN, seq),
                    ArrayAccess(dst, Direction.OUT, seq)]

        def flops_fn(args):
            return 3.0 * (self._plane_bytes / 4)

        return KernelSpec("img_combine", executor=executor,
                          access_fn=access_fn, flops_fn=flops_fn)

    # -- workload protocol ---------------------------------------------------

    def tuned_vector(self, n_workers: int) -> list[int]:
        """One chunk's whole 5-kernel diamond per node."""
        return [5]

    def build(self, rt) -> None:
        """Allocate the corpus chunks and their four stage planes."""
        shape = (BATCH, REAL_SIDE, REAL_SIDE)
        for c in range(self.n_chunks):
            chunk = {
                name: rt.device_array(
                    shape, np.float64, virtual_nbytes=self._plane_bytes,
                    name=f"img.{name}{c}")
                for name in ("x", "blur", "sobel", "sharpen", "out")
            }
            self.chunks.append(chunk)
            pixels = np.random.default_rng(self.seed + c) \
                .random(shape)

            def init(chunk=chunk, values=pixels):
                chunk["x"].data[:] = values

            self._count(rt.host_write(chunk["x"], init,
                                      label=f"img.init{c}"))

    def run(self, rt) -> None:
        """Launch the five-stage diamond for every chunk."""
        blur_h = self._conv_kernel("img_blur_h", -1)
        blur_v = self._conv_kernel("img_blur_v", -2)
        sobel = self._sobel_kernel()
        sharpen = self._sharpen_kernel()
        combine = self._combine_kernel()
        for c, chunk in enumerate(self.chunks):
            # Horizontal pass writes into `blur`, vertical refines it.
            self._count(rt.launch(blur_h, 256, 256,
                                  (chunk["x"], chunk["blur"]),
                                  label=f"img.blur_h{c}"))
            self._count(rt.launch(blur_v, 256, 256,
                                  (chunk["blur"], chunk["blur"]),
                                  label=f"img.blur_v{c}"))
            self._count(rt.launch(sobel, 256, 256,
                                  (chunk["blur"], chunk["sobel"]),
                                  label=f"img.sobel{c}"))
            self._count(rt.launch(sharpen, 256, 256,
                                  (chunk["x"], chunk["blur"],
                                   chunk["sharpen"]),
                                  label=f"img.sharpen{c}"))
            self._count(rt.launch(combine, 256, 256,
                                  (chunk["sharpen"], chunk["sobel"],
                                   chunk["out"]),
                                  label=f"img.combine{c}"))

    def verify(self) -> bool:
        """Compare every chunk against the SciPy reference pipeline."""
        for chunk in self.chunks:
            expected = reference_pipeline(chunk["x"].data)
            if not np.allclose(chunk["out"].data, expected,
                               rtol=1e-10, atol=1e-10):
                return False
        return True
