"""Workload infrastructure: footprint sizing, scaled backings, verification.

Every workload is parameterised by its **modeled** memory footprint (the
paper's x-axis, 4–160 GB) while the NumPy backings stay small, so the
numerics remain exact and testable at every size.  A workload runs against
either runtime (GrOUT or GrCUDA) through the identical surface — the
Listing 2 property.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.gpu.specs import GIB

#: Default cap on real elements per managed array (keeps numerics cheap).
DEFAULT_MAX_REAL_ELEMENTS = 1 << 12

#: Fraction of the declared footprint carried by a workload's *primary*
#: data, leaving headroom for vectors/intermediates so the total managed
#: allocation matches the declared footprint (the paper profiles inputs
#: "to generate a memory footprint for the desired oversubscription
#: level"); without it, a nominally 1×-OSF run would spill by epsilon and
#: thrash spuriously.
FOOTPRINT_FILL = 0.94


@dataclass(frozen=True, slots=True)
class RunResult:
    """Outcome of one workload execution."""

    name: str
    footprint_bytes: int
    elapsed_seconds: float    # simulated
    completed: bool           # False when the run hit the time cap
    verified: bool
    ce_count: int

    @property
    def footprint_gb(self) -> float:
        """Modeled footprint in GiB."""
        return self.footprint_bytes / GIB


def real_elements(virtual_elements: int,
                  cap: int = DEFAULT_MAX_REAL_ELEMENTS) -> int:
    """Real backing size for a virtual element count (power-of-two cap)."""
    if virtual_elements <= 0:
        raise ValueError("virtual_elements must be positive")
    return min(virtual_elements, cap)


class Workload(abc.ABC):
    """Base class of the paper's workload suite.

    Subclasses implement :meth:`build` (allocate + initialise arrays) and
    :meth:`run` (enqueue every CE, asynchronously); :meth:`verify` checks
    the numerical output against a NumPy reference.
    """

    #: Short identifier used by the harness ("mle", "cg", "mv", "bs").
    name: str = "workload"

    def __init__(self, footprint_bytes: int, *,
                 n_chunks: int | None = None,
                 seed: int = 0):
        if footprint_bytes <= 0:
            raise ValueError("footprint_bytes must be positive")
        self.footprint_bytes = int(footprint_bytes)
        self.n_chunks = n_chunks if n_chunks is not None \
            else self.default_chunks(self.footprint_bytes)
        if self.n_chunks < 1:
            raise ValueError("n_chunks must be >= 1")
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self._ce_count = 0

    @staticmethod
    def default_chunks(footprint_bytes: int) -> int:
        """Enough chunks that both GPUs of both nodes see balanced work."""
        return int(np.clip(footprint_bytes // (4 * GIB), 8, 64))

    def tuned_vector(self, n_workers: int) -> list[int]:
        """The offline (user-profiled) vector-step vector for this workload.

        The paper's roofline policy is vector-step "customized to better
        map to the workload" (§V-E); each workload knows its own CE cycle
        and emits a vector that keeps chunk↔node affinity stable.
        """
        return [1]

    # -- protocol ------------------------------------------------------------

    @abc.abstractmethod
    def build(self, rt) -> None:
        """Allocate managed arrays and enqueue host initialisation."""

    @abc.abstractmethod
    def run(self, rt) -> None:
        """Enqueue the workload's kernels (asynchronously)."""

    @abc.abstractmethod
    def verify(self) -> bool:
        """Check the computed output against a NumPy reference."""

    # -- bookkeeping ------------------------------------------------------------

    def _count(self, ce) -> object:
        self._ce_count += 1
        return ce

    @property
    def ce_count(self) -> int:
        """CEs issued so far by this workload instance."""
        return self._ce_count

    # -- driver ---------------------------------------------------------------------

    def execute(self, rt, *, timeout: float | None = None,
                check: bool = True) -> RunResult:
        """Build, run and synchronise on ``rt``; returns the result record.

        ``timeout`` models the paper's 2.5 h per-run cap (simulated
        seconds); an incomplete run reports ``completed=False`` and skips
        verification.
        """
        start = rt.elapsed
        self.build(rt)
        self.run(rt)
        completed = rt.sync(timeout=timeout)
        elapsed = rt.elapsed - start
        verified = bool(completed and (not check or self.verify()))
        return RunResult(
            name=self.name,
            footprint_bytes=self.footprint_bytes,
            elapsed_seconds=elapsed,
            completed=completed,
            verified=verified,
            ce_count=self._ce_count,
        )

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.footprint_bytes/GIB:.3g} GiB "
                f"chunks={self.n_chunks}>")
