"""MLE — machine-learning ensemble inference (§V-B, Fig. 5 left).

Two pipelines over the same chunked feature matrix, deliberately
imbalanced (the paper calls this out): a heavy branch with data-dependent
feature gathers (random-forest-style access — the FALL pages of [7]) and a
light linear branch, combined per chunk into class predictions.

The random-access pattern of the heavy branch is what collapses MLE a full
oversubscription step *earlier* than CG/MV in Fig. 6a.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.kernel import (
    AccessPattern,
    ArrayAccess,
    Direction,
    KernelSpec,
)
from repro.workloads.base import FOOTPRINT_FILL, Workload, real_elements

N_CLASSES = 8
N_FEATURES = 64     # real backing features
HIDDEN = 32


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class MlEnsemble(Workload):
    """Two-pipeline ensemble inference on a chunked dataset."""

    name = "mle"

    def __init__(self, footprint_bytes: int, *, n_chunks: int | None = None,
                 seed: int = 0):
        super().__init__(footprint_bytes, n_chunks=n_chunks, seed=seed)
        # Footprint = the feature matrix (rows × features, float32), with
        # fill headroom for the per-chunk intermediates.
        self.rows_virtual = max(
            self.n_chunks,
            int(FOOTPRINT_FILL * 0.94 * self.footprint_bytes)
            // (4 * N_FEATURES))
        self._rows_real = real_elements(
            max(1, self.rows_virtual // self.n_chunks), 1 << 9)
        self.chunks: list[dict] = []
        self.weights: dict = {}

    # -- kernels ---------------------------------------------------------------

    def _k_forest(self) -> KernelSpec:
        """Heavy branch, stage 1: gather-style feature projection."""
        rows_v = self.rows_virtual / self.n_chunks

        def executor(x_c, w1, h_c):
            h_c.data[:] = np.maximum(x_c.data @ w1.data, 0.0)

        def access_fn(args):
            x_c, w1, h_c = args
            return [
                ArrayAccess(x_c, Direction.IN, AccessPattern.RANDOM,
                            passes=2.0),
                ArrayAccess(w1, Direction.IN, AccessPattern.SEQUENTIAL),
                ArrayAccess(h_c, Direction.OUT, AccessPattern.SEQUENTIAL),
            ]

        def flops_fn(args):
            return 2.0 * rows_v * N_FEATURES * HIDDEN

        return KernelSpec("mle_forest", executor=executor,
                          access_fn=access_fn, flops_fn=flops_fn)

    def _k_forest_head(self) -> KernelSpec:
        """Heavy branch, stage 2: hidden -> class logits."""
        rows_v = self.rows_virtual / self.n_chunks

        def executor(h_c, w2, la_c):
            la_c.data[:] = h_c.data @ w2.data

        def access_fn(args):
            h_c, w2, la_c = args
            seq = AccessPattern.SEQUENTIAL
            return [ArrayAccess(h_c, Direction.IN, seq),
                    ArrayAccess(w2, Direction.IN, seq),
                    ArrayAccess(la_c, Direction.OUT, seq)]

        def flops_fn(args):
            return 2.0 * rows_v * HIDDEN * N_CLASSES

        return KernelSpec("mle_forest_head", executor=executor,
                          access_fn=access_fn, flops_fn=flops_fn)

    def _k_bayes(self) -> KernelSpec:
        """Light branch: one linear pass (naive-Bayes log-likelihoods)."""
        rows_v = self.rows_virtual / self.n_chunks

        def executor(x_c, wb, lb_c):
            lb_c.data[:] = x_c.data @ wb.data

        def access_fn(args):
            x_c, wb, lb_c = args
            seq = AccessPattern.SEQUENTIAL
            # Per-class likelihoods walk the features column-wise.
            return [ArrayAccess(x_c, Direction.IN, AccessPattern.STRIDED),
                    ArrayAccess(wb, Direction.IN, seq),
                    ArrayAccess(lb_c, Direction.OUT, seq)]

        def flops_fn(args):
            return 2.0 * rows_v * N_FEATURES * N_CLASSES

        return KernelSpec("mle_bayes", executor=executor,
                          access_fn=access_fn, flops_fn=flops_fn)

    def _k_combine(self) -> KernelSpec:
        """Softmax-average the branches, emit per-row class predictions."""
        rows_v = self.rows_virtual / self.n_chunks

        def executor(la_c, lb_c, pred_c):
            probs = 0.5 * (_softmax(la_c.data) + _softmax(lb_c.data))
            pred_c.data[:] = probs.argmax(axis=1).astype(pred_c.dtype)

        def access_fn(args):
            la_c, lb_c, pred_c = args
            seq = AccessPattern.SEQUENTIAL
            return [ArrayAccess(la_c, Direction.IN, seq),
                    ArrayAccess(lb_c, Direction.IN, seq),
                    ArrayAccess(pred_c, Direction.OUT, seq)]

        def flops_fn(args):
            return 20.0 * rows_v * N_CLASSES

        return KernelSpec("mle_combine", executor=executor,
                          access_fn=access_fn, flops_fn=flops_fn)

    def tuned_vector(self, n_workers: int) -> list[int]:
        """Split each chunk by *pipeline branch*: the heavy forest branch
        (forest + head) on one node, the light Bayes branch (bayes +
        combine) on the next — the natural mapping of the paper's
        two-pipeline ensemble, at the price of replicating the features to
        both branches' nodes."""
        return [2, 2]

    # -- workload protocol --------------------------------------------------------

    def build(self, rt) -> None:
        """Allocate weights and the feature chunks."""
        rows_v_chunk = max(1, self.rows_virtual // self.n_chunks)
        x_bytes = rows_v_chunk * N_FEATURES * 4
        inter_bytes = max(64, rows_v_chunk * HIDDEN * 4 // 64)

        rng = np.random.default_rng(self.seed)
        self.weights = {
            "w1": rt.device_array((N_FEATURES, HIDDEN), np.float32,
                                  name="mle.w1"),
            "w2": rt.device_array((HIDDEN, N_CLASSES), np.float32,
                                  name="mle.w2"),
            "wb": rt.device_array((N_FEATURES, N_CLASSES), np.float32,
                                  name="mle.wb"),
        }
        w_init = {k: rng.standard_normal(v.shape).astype(np.float32)
                  for k, v in self.weights.items()}

        def init_weights():
            for k, v in self.weights.items():
                v.data[:] = w_init[k]

        self._count(rt.host_write(list(self.weights.values()),
                                  init_weights, label="mle.init_w"))

        for c in range(self.n_chunks):
            chunk = {
                "x": rt.device_array((self._rows_real, N_FEATURES),
                                     np.float32, virtual_nbytes=x_bytes,
                                     name=f"mle.x{c}"),
                "h": rt.device_array((self._rows_real, HIDDEN), np.float32,
                                     virtual_nbytes=inter_bytes,
                                     name=f"mle.h{c}"),
                "la": rt.device_array((self._rows_real, N_CLASSES),
                                      np.float32,
                                      virtual_nbytes=inter_bytes,
                                      name=f"mle.la{c}"),
                "lb": rt.device_array((self._rows_real, N_CLASSES),
                                      np.float32,
                                      virtual_nbytes=inter_bytes,
                                      name=f"mle.lb{c}"),
                "pred": rt.device_array(self._rows_real, np.int32,
                                        virtual_nbytes=inter_bytes,
                                        name=f"mle.pred{c}"),
            }
            self.chunks.append(chunk)
            x_init = np.random.default_rng(self.seed + 1 + c) \
                .standard_normal((self._rows_real, N_FEATURES)) \
                .astype(np.float32)

            def init_x(chunk=chunk, values=x_init):
                chunk["x"].data[:] = values

            self._count(rt.host_write(chunk["x"], init_x,
                                      label=f"mle.initX{c}"))

    def run(self, rt) -> None:
        """Launch both pipelines plus combine per chunk."""
        k_forest = self._k_forest()
        k_head = self._k_forest_head()
        k_bayes = self._k_bayes()
        k_combine = self._k_combine()
        w = self.weights
        for c, chunk in enumerate(self.chunks):
            self._count(rt.launch(
                k_forest, 2048, 256, (chunk["x"], w["w1"], chunk["h"]),
                label=f"mle.forest{c}"))
            self._count(rt.launch(
                k_head, 512, 256, (chunk["h"], w["w2"], chunk["la"]),
                label=f"mle.head{c}"))
            self._count(rt.launch(
                k_bayes, 512, 256, (chunk["x"], w["wb"], chunk["lb"]),
                label=f"mle.bayes{c}"))
            self._count(rt.launch(
                k_combine, 512, 256,
                (chunk["la"], chunk["lb"], chunk["pred"]),
                label=f"mle.combine{c}"))

    def verify(self) -> bool:
        """Recompute the ensemble predictions in NumPy."""
        w = self.weights
        for chunk in self.chunks:
            x = chunk["x"].data
            la = np.maximum(x @ w["w1"].data, 0.0) @ w["w2"].data
            lb = x @ w["wb"].data
            probs = 0.5 * (_softmax(la) + _softmax(lb))
            expected = probs.argmax(axis=1)
            if not np.array_equal(chunk["pred"].data, expected):
                return False
        return True
