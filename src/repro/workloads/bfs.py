"""BFS — level-synchronous breadth-first traversal (pointer chasing).

A fixed-degree random graph, adjacency split into source-range chunks.
Each level launches one kernel per chunk: scan the chunk's sources for
frontier nodes (``dist == level``) and label their unvisited neighbours
``level + 1``.  The adjacency chunk streams at stride, but the
``dist`` scatter is pure pointer chasing — neighbour ids land anywhere
in the array, and every kernel of level L+1 depends on *all* of level
L through the shared ``dist`` buffer (an iterative chain of fan-outs,
the DAG shape graph workloads hand the scheduler).

This is UVMBench's graph-traversal category: the access pattern the
tree prefetcher can do nothing about and the CPU-driven fault handler
prices worst.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.kernel import (
    AccessPattern,
    ArrayAccess,
    Direction,
    KernelSpec,
)
from repro.workloads.base import FOOTPRINT_FILL, Workload

#: Real backing graph: node count and out-degree (numerics only).
REAL_NODES = 2048
DEGREE = 8

#: Synchronous levels executed (covers a 2048-node random graph's
#: diameter with room to spare; extra levels are no-ops).
LEVELS = 6


def reference_bfs(adj: np.ndarray, source: int = 0,
                  levels: int = LEVELS) -> np.ndarray:
    """Level-capped BFS distances on the real backing graph."""
    dist = np.full(adj.shape[0], -1, dtype=np.int32)
    dist[source] = 0
    frontier = [source]
    for level in range(levels):
        nxt = []
        for u in frontier:
            for v in adj[u]:
                if dist[v] < 0:
                    dist[v] = level + 1
                    nxt.append(v)
        frontier = nxt
    return dist


def make_bfs_kernel() -> KernelSpec:
    """Expand one adjacency chunk's slice of the current frontier."""

    def executor(adj_c, dist, level, lo, hi, nodes_virtual):
        adj = adj_c.data.reshape(hi - lo, DEGREE)
        d = dist.data
        sources = np.flatnonzero(d[lo:hi] == level) + lo
        for u in sources:
            for v in adj[u - lo]:
                if d[v] < 0:
                    d[v] = level + 1

    def access_fn(args):
        adj_c, dist, level, lo, hi, nodes_virtual = args
        return [
            # The chunk's edge lists stream by source id.
            ArrayAccess(adj_c, Direction.IN, AccessPattern.STRIDED),
            # Frontier test + neighbour scatter: data-dependent order
            # over the whole distance array.
            ArrayAccess(dist, Direction.INOUT, AccessPattern.RANDOM),
        ]

    def flops_fn(args):
        lo, hi = args[3], args[4]
        return float((hi - lo) * DEGREE)

    return KernelSpec("bfs_level", executor=executor, access_fn=access_fn,
                      flops_fn=flops_fn)


class BfsTraversal(Workload):
    """Level-synchronous BFS over a chunked fixed-degree random graph."""

    name = "bfs"

    def __init__(self, footprint_bytes: int, *, n_chunks: int | None = None,
                 seed: int = 0):
        super().__init__(footprint_bytes, n_chunks=n_chunks, seed=seed)
        # Adjacency carries the footprint (DEGREE int32 edges per virtual
        # node); the distance array takes the remainder.
        adj_bytes = int(FOOTPRINT_FILL * self.footprint_bytes)
        self.nodes_virtual = max(REAL_NODES,
                                 adj_bytes // (4 * DEGREE))
        self.dist_virtual_bytes = max(
            REAL_NODES * 4, self.footprint_bytes - adj_bytes)
        self.kernel = make_bfs_kernel()
        self.adj_chunks: list = []
        self.bounds: list[tuple[int, int]] = []
        self.dist = None
        self.adj_full: np.ndarray | None = None

    def build(self, rt) -> None:
        """Allocate the distance array and the adjacency chunks."""
        rng = np.random.default_rng(self.seed)
        # One global random graph, sliced by source range per chunk.
        self.adj_full = rng.integers(
            0, REAL_NODES, size=(REAL_NODES, DEGREE), dtype=np.int32)
        self.dist = rt.device_array(
            REAL_NODES, np.int32,
            virtual_nbytes=self.dist_virtual_bytes, name="bfs.dist")

        def init_dist(dist=self.dist):
            dist.data[:] = -1
            dist.data[0] = 0

        self._count(rt.host_write(self.dist, init_dist,
                                  label="bfs.init_dist"))

        adj_chunk_virtual = self.nodes_virtual * DEGREE * 4 \
            // self.n_chunks
        edges = np.array_split(np.arange(REAL_NODES), self.n_chunks)
        for c, ids in enumerate(edges):
            lo, hi = int(ids[0]), int(ids[-1]) + 1
            block = self.adj_full[lo:hi].reshape(-1).copy()
            adj_c = rt.device_array(
                block.size, np.int32,
                virtual_nbytes=max(block.size * 4, adj_chunk_virtual),
                name=f"bfs.adj{c}")
            self.adj_chunks.append(adj_c)
            self.bounds.append((lo, hi))

            def init_adj(a=adj_c, values=block):
                a.data[:] = values

            self._count(rt.host_write(adj_c, init_adj,
                                      label=f"bfs.init_adj{c}"))

    def run(self, rt) -> None:
        """Launch LEVELS × n_chunks frontier-expansion kernels."""
        for level in range(LEVELS):
            for c in range(self.n_chunks):
                lo, hi = self.bounds[c]
                args = (self.adj_chunks[c], self.dist, level, lo, hi,
                        self.nodes_virtual)
                self._count(rt.launch(self.kernel, 2048, 256, args,
                                      label=f"bfs.l{level}c{c}"))

    def verify(self) -> bool:
        """Distances match a host-side level-capped BFS."""
        assert self.dist is not None and self.adj_full is not None
        expected = reference_bfs(self.adj_full)
        return bool(np.array_equal(self.dist.data, expected))
