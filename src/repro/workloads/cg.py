"""CG — conjugate gradient with a row-partitioned matrix (§V-B).

The iterative structure is what makes CG interesting for GrOUT: every
iteration broadcasts the direction vector ``p`` to all matrix chunks,
gathers per-chunk partial results for the scalar reductions, then updates
the vectors — "multiple inter-dependent CEs that stress network
communication".
"""

from __future__ import annotations

import numpy as np

from repro.gpu.kernel import (
    AccessPattern,
    ArrayAccess,
    Direction,
    KernelSpec,
)
from repro.workloads.base import FOOTPRINT_FILL, Workload

#: Real backing size of the solution vector (must be >= n_chunks).
REAL_N = 512


def _chunk_bounds(n: int, parts: int) -> list[tuple[int, int]]:
    bounds = np.linspace(0, n, parts + 1, dtype=int)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(parts)]


class ConjugateGradient(Workload):
    """CG solve of an SPD system, matrix row-chunked across the cluster."""

    name = "cg"

    def __init__(self, footprint_bytes: int, *, n_chunks: int | None = None,
                 iterations: int = 20, seed: int = 0):
        if n_chunks is None:
            n_chunks = min(32, Workload.default_chunks(footprint_bytes))
        super().__init__(footprint_bytes, n_chunks=n_chunks, seed=seed)
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.iterations = iterations
        # Virtual problem size: footprint is the (square, float32) matrix,
        # with fill headroom for the solver vectors.
        self.n_virtual = int(np.sqrt(FOOTPRINT_FILL
                                     * self.footprint_bytes / 4))
        self.bounds = _chunk_bounds(REAL_N, self.n_chunks)
        self.residual_history: list[float] = []
        self._arrays_built = False

    # -- kernels -----------------------------------------------------------------

    def _k_matvec(self) -> KernelSpec:
        bounds = self.bounds

        def executor(a_c, p, ap_c, chunk_idx):
            ap_c.data[:] = a_c.data @ p.data

        def access_fn(args):
            a_c, p, ap_c, chunk_idx = args
            seq = AccessPattern.SEQUENTIAL
            # The matrix is walked row-by-row with per-row reduction
            # strides (CSR-style), prefetch-friendly but not a pure sweep.
            return [ArrayAccess(a_c, Direction.IN, AccessPattern.STRIDED,
                                passes=1.0),
                    ArrayAccess(p, Direction.IN, seq),
                    ArrayAccess(ap_c, Direction.OUT, seq)]

        def flops_fn(args):
            chunk_idx = args[3]
            lo, hi = bounds[chunk_idx]
            rows_virtual = self.n_virtual * (hi - lo) / REAL_N
            return 2.0 * rows_virtual * self.n_virtual

        return KernelSpec("cg_matvec", executor=executor,
                          access_fn=access_fn, flops_fn=flops_fn)

    def _k_partial_dot(self) -> KernelSpec:
        bounds = self.bounds

        def executor(p, ap_c, out_c, chunk_idx):
            lo, hi = bounds[chunk_idx]
            out_c.data[0] = float(p.data[lo:hi] @ ap_c.data)

        def access_fn(args):
            p, ap_c, out_c, chunk_idx = args
            seq = AccessPattern.SEQUENTIAL
            return [ArrayAccess(p, Direction.IN, seq),
                    ArrayAccess(ap_c, Direction.IN, seq),
                    ArrayAccess(out_c, Direction.OUT, seq)]

        def flops_fn(args):
            return 2.0 * self.n_virtual / self.n_chunks

        return KernelSpec("cg_pdot", executor=executor,
                          access_fn=access_fn, flops_fn=flops_fn)

    def _k_alpha(self) -> KernelSpec:
        def executor(*args):
            alpha, rs_old = args[0], args[1]
            partials = args[2:]
            pap = sum(float(p.data[0]) for p in partials)
            alpha.data[0] = rs_old.data[0] / pap if pap != 0 else 0.0

        def access_fn(args):
            seq = AccessPattern.SEQUENTIAL
            accesses = [ArrayAccess(args[0], Direction.OUT, seq),
                        ArrayAccess(args[1], Direction.IN, seq)]
            accesses += [ArrayAccess(p, Direction.IN, seq)
                         for p in args[2:]]
            return accesses

        return KernelSpec("cg_alpha", flops_per_byte=0.25,
                          executor=executor, access_fn=access_fn)

    def _k_update_xr(self) -> KernelSpec:
        def executor(*args):
            x, r, p, alpha = args[:4]
            ap_chunks = args[4:]
            a = float(alpha.data[0])
            x.data += a * p.data
            ap_full = np.concatenate([c.data for c in ap_chunks])
            r.data -= a * ap_full

        def access_fn(args):
            seq = AccessPattern.SEQUENTIAL
            x, r, p, alpha = args[:4]
            accesses = [ArrayAccess(x, Direction.INOUT, seq),
                        ArrayAccess(r, Direction.INOUT, seq),
                        ArrayAccess(p, Direction.IN, seq),
                        ArrayAccess(alpha, Direction.IN, seq)]
            accesses += [ArrayAccess(c, Direction.IN, seq)
                         for c in args[4:]]
            return accesses

        def flops_fn(args):
            return 4.0 * self.n_virtual

        return KernelSpec("cg_update_xr", executor=executor,
                          access_fn=access_fn, flops_fn=flops_fn)

    def _k_beta(self) -> KernelSpec:
        history = self.residual_history

        def executor(r, rs_old, rs_new, beta):
            rs = float(r.data @ r.data)
            rs_new.data[0] = rs
            prev = float(rs_old.data[0])
            beta.data[0] = rs / prev if prev != 0 else 0.0
            rs_old.data[0] = rs
            history.append(np.sqrt(rs))

        def access_fn(args):
            r, rs_old, rs_new, beta = args
            seq = AccessPattern.SEQUENTIAL
            return [ArrayAccess(r, Direction.IN, seq),
                    ArrayAccess(rs_old, Direction.INOUT, seq),
                    ArrayAccess(rs_new, Direction.OUT, seq),
                    ArrayAccess(beta, Direction.OUT, seq)]

        def flops_fn(args):
            return 2.0 * self.n_virtual

        return KernelSpec("cg_beta", executor=executor,
                          access_fn=access_fn, flops_fn=flops_fn)

    def _k_update_p(self) -> KernelSpec:
        def executor(p, r, beta):
            p.data[:] = r.data + float(beta.data[0]) * p.data

        def access_fn(args):
            p, r, beta = args
            seq = AccessPattern.SEQUENTIAL
            return [ArrayAccess(p, Direction.INOUT, seq),
                    ArrayAccess(r, Direction.IN, seq),
                    ArrayAccess(beta, Direction.IN, seq)]

        def flops_fn(args):
            return 2.0 * self.n_virtual

        return KernelSpec("cg_update_p", executor=executor,
                          access_fn=access_fn, flops_fn=flops_fn)

    def tuned_vector(self, n_workers: int) -> list[int]:
        """Align the vector with CG's per-iteration CE cycle (2C + 4 CEs)
        so every matrix chunk stays on one node across iterations.

        Layout per iteration: the matvec wave splits ``share`` chunks per
        node, the partial-dot wave mirrors it, and the four scalar/vector
        tail CEs (alpha, update_xr, beta, update_p) ride on the last
        node's final slot — keeping the slot count a multiple of
        ``n_workers`` so the next iteration starts back on worker 0.
        Exact alignment assumes ``n_chunks % n_workers == 0`` (the harness
        sizes chunks accordingly); otherwise the vector still cycles but
        chunk↔node affinity degrades.
        """
        share = max(1, self.n_chunks // n_workers)
        vector = [share] * n_workers          # matvec wave
        vector += [share] * (n_workers - 1)   # dot wave, all but last node
        vector += [share + 4]                 # last dots + the 4 tail CEs
        return vector

    # -- workload protocol -----------------------------------------------------------

    def build(self, rt) -> None:
        """Allocate the SPD system, vectors and partials."""
        n_v = self.n_virtual
        vec_bytes = n_v * 4
        rows_v = max(1, n_v // self.n_chunks)
        chunk_bytes = rows_v * n_v * 4

        # A real SPD system, then row slices as chunk backings.
        rng = np.random.default_rng(self.seed)
        q = rng.standard_normal((REAL_N, REAL_N))
        self.a_full = (q @ q.T) / REAL_N + np.eye(REAL_N) * REAL_N * 0.05
        self.b_full = rng.standard_normal(REAL_N)

        self.a_chunks = []
        self.ap_chunks = []
        self.pap_partials = []
        for c, (lo, hi) in enumerate(self.bounds):
            a_c = rt.device_array((hi - lo, REAL_N), np.float64,
                                  virtual_nbytes=chunk_bytes,
                                  name=f"cg.A{c}")
            ap_c = rt.device_array(hi - lo, np.float64,
                                   virtual_nbytes=max(8, vec_bytes
                                                      // self.n_chunks),
                                   name=f"cg.Ap{c}")
            pap_c = rt.device_array(1, np.float64, name=f"cg.pap{c}")
            self.a_chunks.append(a_c)
            self.ap_chunks.append(ap_c)
            self.pap_partials.append(pap_c)

            def init_a(a=a_c, lo=lo, hi=hi):
                a.data[:] = self.a_full[lo:hi]

            self._count(rt.host_write(a_c, init_a, label=f"cg.initA{c}"))

        self.x = rt.device_array(REAL_N, np.float64,
                                 virtual_nbytes=vec_bytes, name="cg.x")
        self.r = rt.device_array(REAL_N, np.float64,
                                 virtual_nbytes=vec_bytes, name="cg.r")
        self.p = rt.device_array(REAL_N, np.float64,
                                 virtual_nbytes=vec_bytes, name="cg.p")
        self.alpha = rt.device_array(1, np.float64, name="cg.alpha")
        self.beta = rt.device_array(1, np.float64, name="cg.beta")
        self.rs_old = rt.device_array(1, np.float64, name="cg.rs_old")
        self.rs_new = rt.device_array(1, np.float64, name="cg.rs_new")

        def init_vectors():
            self.x.data[:] = 0.0
            self.r.data[:] = self.b_full
            self.p.data[:] = self.b_full
            self.rs_old.data[0] = float(self.b_full @ self.b_full)

        self._count(rt.host_write(
            [self.x, self.r, self.p, self.rs_old], init_vectors,
            label="cg.init_vec"))
        self._arrays_built = True

    def run(self, rt) -> None:
        """Enqueue all iterations' matvec/dot/update CEs."""
        k_mv = self._k_matvec()
        k_pd = self._k_partial_dot()
        k_alpha = self._k_alpha()
        k_xr = self._k_update_xr()
        k_beta = self._k_beta()
        k_p = self._k_update_p()
        for _ in range(self.iterations):
            for c in range(self.n_chunks):
                self._count(rt.launch(
                    k_mv, 4096, 256,
                    (self.a_chunks[c], self.p, self.ap_chunks[c], c),
                    label=f"cg.mv{c}"))
            for c in range(self.n_chunks):
                self._count(rt.launch(
                    k_pd, 64, 256,
                    (self.p, self.ap_chunks[c], self.pap_partials[c], c),
                    label=f"cg.pdot{c}"))
            self._count(rt.launch(
                k_alpha, 1, 32,
                (self.alpha, self.rs_old, *self.pap_partials),
                label="cg.alpha"))
            self._count(rt.launch(
                k_xr, 1024, 256,
                (self.x, self.r, self.p, self.alpha, *self.ap_chunks),
                label="cg.update_xr"))
            self._count(rt.launch(
                k_beta, 64, 256,
                (self.r, self.rs_old, self.rs_new, self.beta),
                label="cg.beta"))
            self._count(rt.launch(
                k_p, 1024, 256, (self.p, self.r, self.beta),
                label="cg.update_p"))

    def verify(self) -> bool:
        """Residual consistency + norm reduction check."""
        if not self._arrays_built:
            return False
        # Residual must be consistent with x and strictly reduced.
        recomputed = self.b_full - self.a_full @ self.x.data
        if not np.allclose(recomputed, self.r.data, rtol=1e-6, atol=1e-8):
            return False
        norm_b = float(np.linalg.norm(self.b_full))
        final = float(np.linalg.norm(self.r.data))
        return final < 0.5 * norm_b
