"""MV — dense row-partitioned matrix–vector product (§V-B).

``y = M @ x`` with the matrix split into row chunks, one kernel per chunk:
massively parallel, single-pass, memory-bound streaming.  At scale this is
the workload UVM punishes hardest (the 342× step of Fig. 6a) because its
per-byte compute is too thin to hide any fault traffic.

The matrix is *short and fat* (few rows, an enormous feature dimension —
the usual shape of a dense scoring/embedding-lookup pass), so the shared
input vector ``x`` is a non-trivial fraction of every chunk.  That shape is
what makes locality-greedy online policies collapse MV in Fig. 8: once one
node holds ``x``, every chunk CE looks cheapest there.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.kernel import (
    AccessPattern,
    ArrayAccess,
    Direction,
    KernelSpec,
)
from repro.workloads.base import FOOTPRINT_FILL, Workload

#: Matrix rows per chunk: x/chunk ≈ 1/ROWS_PER_CHUNK ≈ 8 % shared data.
ROWS_PER_CHUNK = 12

#: Real backing sizes (numerics stay exact at any modeled footprint).
REAL_COLS = 512


def make_mv_kernel() -> KernelSpec:
    """One row-chunk of the product: y_c = M_c @ x."""

    def executor(m_chunk, x, y_chunk, rows, cols):
        y_chunk.data[:] = m_chunk.data @ x.data

    def access_fn(args):
        m_chunk, x, y_chunk, rows, cols = args
        seq = AccessPattern.SEQUENTIAL
        return [
            ArrayAccess(m_chunk, Direction.IN, seq, passes=1.0),
            ArrayAccess(x, Direction.IN, seq),
            ArrayAccess(y_chunk, Direction.OUT, seq),
        ]

    def flops_fn(args):
        rows, cols = args[3], args[4]
        return 2.0 * float(rows) * float(cols)

    return KernelSpec("mv_chunk", executor=executor, access_fn=access_fn,
                      flops_fn=flops_fn)


class MatVec(Workload):
    """Row-partitioned dense matrix–vector product."""

    name = "mv"

    def __init__(self, footprint_bytes: int, *, n_chunks: int | None = None,
                 seed: int = 0):
        super().__init__(footprint_bytes, n_chunks=n_chunks, seed=seed)
        self.rows_virtual = ROWS_PER_CHUNK * self.n_chunks
        # Footprint = matrix + x; the fat dimension carries the bytes.
        self.cols_virtual = max(
            REAL_COLS,
            int(FOOTPRINT_FILL * self.footprint_bytes)
            // (4 * (self.rows_virtual + 1)))
        self.kernel = make_mv_kernel()
        self.m_chunks: list = []
        self.y_chunks: list = []
        self.x = None

    def build(self, rt) -> None:
        """Allocate x and the matrix row chunks."""
        chunk_virtual_bytes = ROWS_PER_CHUNK * self.cols_virtual * 4
        self.x = rt.device_array(REAL_COLS, np.float32,
                                 virtual_nbytes=self.cols_virtual * 4,
                                 name="mv.x")
        rng = np.random.default_rng(self.seed)
        x_init = rng.standard_normal(REAL_COLS).astype(np.float32)

        def init_x(x=self.x, values=x_init):
            x.data[:] = values

        self._count(rt.host_write(self.x, init_x, label="mv.init_x"))

        for c in range(self.n_chunks):
            m_c = rt.device_array(
                (ROWS_PER_CHUNK, REAL_COLS), np.float32,
                virtual_nbytes=chunk_virtual_bytes, name=f"mv.M{c}")
            y_c = rt.device_array(
                ROWS_PER_CHUNK, np.float32,
                virtual_nbytes=ROWS_PER_CHUNK * 4, name=f"mv.y{c}")
            self.m_chunks.append(m_c)
            self.y_chunks.append(y_c)
            block = np.random.default_rng(self.seed + 1 + c) \
                .standard_normal((ROWS_PER_CHUNK, REAL_COLS)) \
                .astype(np.float32)

            def init_m(m=m_c, values=block):
                m.data[:] = values

            self._count(rt.host_write(m_c, init_m, label=f"mv.init_M{c}"))

    def run(self, rt) -> None:
        """Launch one product kernel per row chunk."""
        for c in range(self.n_chunks):
            args = (self.m_chunks[c], self.x, self.y_chunks[c],
                    ROWS_PER_CHUNK, self.cols_virtual)
            self._count(rt.launch(self.kernel, 4096, 256, args,
                                  label=f"mv{c}"))

    def verify(self) -> bool:
        """Check every chunk product against NumPy."""
        assert self.x is not None
        for m_c, y_c in zip(self.m_chunks, self.y_chunks):
            expected = m_c.data @ self.x.data
            if not np.allclose(y_c.data, expected, rtol=1e-4, atol=1e-4):
                return False
        return True
