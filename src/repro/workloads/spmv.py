"""SpMV — sparse matrix–vector product on a power-law matrix.

``y = A @ x`` with A in CSR split into row chunks, one kernel per chunk.
The nonzero *values* and *column indices* stream sequentially, but the
gather ``x[cols]`` is data-dependent: with a power-law (Zipf) column
distribution most of ``x`` is touched, in an order the UVM prefetcher
cannot predict.  This is UVMBench's sparse/graph category — the regime
where the CPU-driven fault handler's per-batch round-trips dominate and
oversubscription collapses almost immediately (RANDOM knee ≈ 1.05×),
while a GPU-driven backend degrades by link occupancy only.

Like every suite workload, the modeled footprint is virtual (the CSR
arrays carry the bytes) while the real NumPy backing stays small enough
to verify exactly.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.kernel import (
    AccessPattern,
    ArrayAccess,
    Direction,
    KernelSpec,
)
from repro.workloads.base import FOOTPRINT_FILL, Workload

#: Real backing: rows per chunk and nonzeros per row (numerics only).
ROWS_PER_CHUNK = 16
NNZ_PER_ROW = 64

#: Real dense-vector length (columns of the real matrix).
REAL_COLS = 2048

#: Zipf exponent of the column distribution — heavy-tailed, as in
#: power-law graphs/feature matrices.
ZIPF_A = 1.3

#: Share of ``x``'s pages a chunk's gather actually lands on.  Zipf hits
#: concentrate on the head but the tail is long; most of the vector is
#: touched across a chunk's rows, in data-dependent order.
X_TOUCH_FRACTION = 0.6


def _zipf_columns(rng: np.random.Generator, n: int, cols: int) -> np.ndarray:
    """Power-law column picks folded into the valid range."""
    raw = rng.zipf(ZIPF_A, size=n)
    return ((raw - 1) % cols).astype(np.int32)


def make_spmv_kernel() -> KernelSpec:
    """One CSR row-chunk of the product: y_c = A_c @ x."""

    def executor(vals_c, cols_c, x, y_c, rows, nnz_virtual):
        gathered = x.data[cols_c.data].reshape(rows, NNZ_PER_ROW)
        y_c.data[:] = (vals_c.data.reshape(rows, NNZ_PER_ROW)
                       * gathered).sum(axis=1)

    def access_fn(args):
        vals_c, cols_c, x, y_c, rows, nnz_virtual = args
        seq = AccessPattern.SEQUENTIAL
        return [
            ArrayAccess(vals_c, Direction.IN, seq),
            ArrayAccess(cols_c, Direction.IN, seq),
            # The gather: data-dependent page order over most of x.
            ArrayAccess(x, Direction.IN, AccessPattern.RANDOM,
                        fraction=X_TOUCH_FRACTION),
            ArrayAccess(y_c, Direction.OUT, seq),
        ]

    def flops_fn(args):
        return 2.0 * float(args[5])     # one FMA per virtual nonzero

    return KernelSpec("spmv_chunk", executor=executor, access_fn=access_fn,
                      flops_fn=flops_fn)


class SpMV(Workload):
    """Row-chunked CSR SpMV with a power-law column distribution."""

    name = "spmv"

    def __init__(self, footprint_bytes: int, *, n_chunks: int | None = None,
                 seed: int = 0):
        super().__init__(footprint_bytes, n_chunks=n_chunks, seed=seed)
        # CSR carries the footprint: 8 bytes per virtual nonzero
        # (float32 value + int32 column), split evenly across chunks;
        # x takes what the fill factor leaves.
        csr_bytes = int(FOOTPRINT_FILL * self.footprint_bytes)
        self.nnz_virtual_per_chunk = max(
            ROWS_PER_CHUNK * NNZ_PER_ROW, csr_bytes // (8 * self.n_chunks))
        y_bytes = ROWS_PER_CHUNK * 4 * self.n_chunks
        self.x_virtual_bytes = max(
            REAL_COLS * 4, self.footprint_bytes - csr_bytes - y_bytes)
        self.kernel = make_spmv_kernel()
        self.vals_chunks: list = []
        self.cols_chunks: list = []
        self.y_chunks: list = []
        self.x = None

    def build(self, rt) -> None:
        """Allocate x plus the CSR value/column chunks."""
        nnz_real = ROWS_PER_CHUNK * NNZ_PER_ROW
        self.x = rt.device_array(REAL_COLS, np.float32,
                                 virtual_nbytes=self.x_virtual_bytes,
                                 name="spmv.x")
        rng = np.random.default_rng(self.seed)
        x_init = rng.standard_normal(REAL_COLS).astype(np.float32)

        def init_x(x=self.x, values=x_init):
            x.data[:] = values

        self._count(rt.host_write(self.x, init_x, label="spmv.init_x"))

        for c in range(self.n_chunks):
            chunk_rng = np.random.default_rng(self.seed + 1 + c)
            vals_c = rt.device_array(
                nnz_real, np.float32,
                virtual_nbytes=self.nnz_virtual_per_chunk * 4,
                name=f"spmv.vals{c}")
            cols_c = rt.device_array(
                nnz_real, np.int32,
                virtual_nbytes=self.nnz_virtual_per_chunk * 4,
                name=f"spmv.cols{c}")
            y_c = rt.device_array(ROWS_PER_CHUNK, np.float32,
                                  virtual_nbytes=ROWS_PER_CHUNK * 4,
                                  name=f"spmv.y{c}")
            self.vals_chunks.append(vals_c)
            self.cols_chunks.append(cols_c)
            self.y_chunks.append(y_c)
            vals_init = chunk_rng.standard_normal(nnz_real) \
                .astype(np.float32)
            cols_init = _zipf_columns(chunk_rng, nnz_real, REAL_COLS)

            def init_vals(a=vals_c, values=vals_init):
                a.data[:] = values

            def init_cols(a=cols_c, values=cols_init):
                a.data[:] = values

            self._count(rt.host_write(vals_c, init_vals,
                                      label=f"spmv.init_vals{c}"))
            self._count(rt.host_write(cols_c, init_cols,
                                      label=f"spmv.init_cols{c}"))

    def run(self, rt) -> None:
        """Launch one gather-multiply kernel per row chunk."""
        for c in range(self.n_chunks):
            args = (self.vals_chunks[c], self.cols_chunks[c], self.x,
                    self.y_chunks[c], ROWS_PER_CHUNK,
                    self.nnz_virtual_per_chunk)
            self._count(rt.launch(self.kernel, 4096, 256, args,
                                  label=f"spmv{c}"))

    def verify(self) -> bool:
        """Check every chunk's gathered product against NumPy."""
        assert self.x is not None
        for vals_c, cols_c, y_c in zip(self.vals_chunks, self.cols_chunks,
                                       self.y_chunks):
            gathered = self.x.data[cols_c.data] \
                .reshape(ROWS_PER_CHUNK, NNZ_PER_ROW)
            expected = (vals_c.data.reshape(ROWS_PER_CHUNK, NNZ_PER_ROW)
                        * gathered).sum(axis=1)
            if not np.allclose(y_c.data, expected, rtol=1e-4, atol=1e-4):
                return False
        return True
