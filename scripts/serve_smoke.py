#!/usr/bin/env python
"""End-to-end smoke of the ``grout serve`` daemon (the CI serve job).

Boots ``python -m repro serve`` as a subprocess on an ephemeral port,
waits for the readiness line, submits one registry workload spec over
plain HTTP, validates the grout-serve/1 run-report, asks the daemon to
shut down, and asserts a clean exit — all within a hard timeout.

Exit code 0 on success; non-zero with a diagnostic otherwise.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
import urllib.request

BOOT_TIMEOUT = 60          # seconds to wait for the readiness line
EXIT_TIMEOUT = 60          # seconds to wait for a clean exit
SPEC = {"workload": "mv", "gb": 0.125, "tenant": "smoke"}

REPORT_KEYS = {"schema", "ticket", "tenant", "session", "workload",
               "footprint_bytes", "ce_count", "submitted_at",
               "finished_at", "latency_seconds", "completed", "verified"}


def fail(message: str, proc: subprocess.Popen | None = None) -> int:
    print(f"serve-smoke: FAIL: {message}", file=sys.stderr)
    if proc is not None and proc.poll() is None:
        proc.kill()
    return 1


def post(base: str, path: str, payload: dict | None, timeout: float = 30):
    body = json.dumps(payload).encode() if payload is not None else b""
    req = urllib.request.Request(base + path, data=body, method="POST",
                                 headers={"Content-Type":
                                          "application/json"})
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read().decode())


def main() -> int:
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env["PYTHONPATH"] = os.path.join(root, "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, cwd=root)
    assert proc.stdout is not None

    # -- readiness: the CLI prints one flushed marker line once bound.
    deadline = time.monotonic() + BOOT_TIMEOUT
    base = None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            return fail("daemon exited before becoming ready", proc)
        match = re.search(r"listening on (http://\S+)", line)
        if match:
            base = match.group(1)
            break
    if base is None:
        return fail(f"no readiness line within {BOOT_TIMEOUT}s", proc)
    print(f"serve-smoke: daemon ready at {base}")

    try:
        with urllib.request.urlopen(base + "/healthz", timeout=10) as r:
            if json.loads(r.read().decode()).get("status") != "ok":
                return fail("unexpected /healthz payload", proc)

        status, report = post(base, "/v1/run", SPEC)
        if status != 200:
            return fail(f"/v1/run returned {status}: {report}", proc)
        missing = REPORT_KEYS - set(report)
        if missing:
            return fail(f"run-report missing keys {sorted(missing)}", proc)
        if report["schema"] != "grout-serve/1":
            return fail(f"bad schema {report['schema']!r}", proc)
        if not (report["completed"] and report["verified"]):
            return fail(f"workload not verified: {report}", proc)
        print(f"serve-smoke: run-report ok "
              f"(ce_count={report['ce_count']}, "
              f"latency={report['latency_seconds']:.4g}s simulated)")

        status, payload = post(base, "/v1/shutdown", None)
        if status != 200 or payload.get("status") != "shutting-down":
            return fail(f"bad shutdown reply {status}: {payload}", proc)
    except Exception as exc:  # noqa: BLE001 - smoke diagnostics
        return fail(f"HTTP phase raised {exc!r}", proc)

    try:
        proc.wait(timeout=EXIT_TIMEOUT)
    except subprocess.TimeoutExpired:
        return fail(f"daemon did not exit within {EXIT_TIMEOUT}s", proc)
    if proc.returncode != 0:
        return fail(f"daemon exited with code {proc.returncode}", proc)
    tail = proc.stdout.read()
    if "shut down cleanly" not in tail:
        return fail(f"missing clean-shutdown marker; tail: {tail!r}", proc)
    print("serve-smoke: clean shutdown; PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
